(* xvi-lint stage 2: Typedtree-based discipline analysis.

   Consumes [.cmt] files (or typechecks fixture sources in-process),
   computes per-function effect summaries — mutates-store,
   publishes-epoch, fsyncs, appends, acks, renames, validates,
   acquires-lock — plus a call graph, and checks four inter-procedural
   rules over the concurrent core:

     D1  every path to a store/Bigvec mutation or epoch publication is
         dominated by the writer lock (serve/repl entry points);
     D2  no mutation after an epoch publication in the same critical
         section, and no mutation of a value that flowed out of
         [Engine.pin] (COW shared-chunk invariant);
     D3  in wal/txn/repl: validate before append, fsync before ack,
         and file+dir fsync around a snapshot rename;
     D4  encoder/decoder pairs match the same tag/verb set.

   Findings reuse the {!Lint} vocabulary (rules, allows, A0) and carry
   a witness path: the call chain from the entry point to the violating
   effect.  See DESIGN.md "Static analysis" for the rule catalogue. *)

module Lint = Xvi_lint_lib.Lint

(* ---------- effect vocabulary ------------------------------------- *)

type prim = Mut | Pub | Fsync | Append | Ack | Rename | Validate

let bit = function
  | Mut -> 1
  | Pub -> 2
  | Fsync -> 4
  | Append -> 8
  | Ack -> 16
  | Rename -> 32
  | Validate -> 64

let has set p = set land bit p <> 0

module SS = Set.Make (String)

type const = Ci of int | Cs of string

let compare_const a b =
  match (a, b) with
  | Ci x, Ci y -> Int.compare x y
  | Cs x, Cs y -> String.compare x y
  | Ci _, Cs _ -> -1
  | Cs _, Ci _ -> 1

let const_to_string = function
  | Ci i -> string_of_int i
  | Cs s -> Printf.sprintf "%S" s

(* witness step: (what, file, line) *)
type step = string * string * int

type ev =
  | Eprim of prim * string * Location.t * bool (* what, desc, loc, locked *)
  | Elock
  | Eunlock
  | Ecall of {
      callee : string; (* resolved canonical key, or normalized name *)
      callee_prims : int; (* name-classified primitive effects *)
      lambdas : string list; (* sub-def keys of literal lambda args *)
      pinned_arg : string option; (* pinned ident passed as an argument *)
      loc : Location.t;
      locked : bool;
    }

type def = {
  key : string; (* canonical dotted name, e.g. "Engine.submit" *)
  dfile : string;
  dline : int;
  root_unit : string;
  scope_d1 : bool; (* lib/serve + lib/repl (or fixture) *)
  scope_d3 : bool; (* lib/wal + lib/txn + lib/repl (or fixture) *)
  is_lambda : bool;
  mutable events : ev list; (* reversed while building *)
  mutable params : SS.t;
  mutable wraps_lock : bool; (* applies a functional param under the lock *)
  mutable is_ctor : bool; (* returns a [t]: excluded from D1 roots *)
  mutable allows : (Lint.rule * string) list;
  mutable pat_tags : const list; (* first constant per match-arm pattern *)
  mutable body_tags : const list; (* first constant per match-arm body *)
}

type summary = {
  mutable eff : int; (* may-effect bitmask, transitively *)
  mutable acquires : bool; (* takes the lock itself (syntactic) *)
  mutable unprot : step list option; (* witness to an unlocked Mut/Pub *)
  mutable pub_open : bool; (* publication escaping into caller's section *)
  mutable mut_open : bool; (* mutation escaping into caller's section *)
}

(* ---------- name normalization ------------------------------------ *)

(* Dune wraps library modules as [Xvi_serve__Engine]; strip the wrapper
   and [Stdlib] so [Xvi_serve__Engine.pin], [Engine.pin] and
   [Stdlib.Mutex.lock]/[Mutex.lock] classify identically. *)
let split_wrapped comp =
  let parts = ref [] and buf = Buffer.create (String.length comp) in
  let n = String.length comp in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && comp.[!i] = '_' && comp.[!i + 1] = '_' then begin
      if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf comp.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
  List.rev !parts

let is_wrapper_comp c =
  c = "Stdlib" || c = "Dune__exe"
  || String.length c > 4
     && String.sub c 0 4 = "Xvi_"
     && String.uncapitalize_ascii c = String.lowercase_ascii c

let rec drop_wrappers = function
  | c :: (_ :: _ as rest) when is_wrapper_comp c -> drop_wrappers rest
  | comps -> comps

let normalize_comps ~aliases raw =
  let comps =
    String.split_on_char '.' raw |> List.concat_map split_wrapped
  in
  let comps =
    match comps with
    | head :: rest -> (
        match Hashtbl.find_opt aliases head with
        | Some expansion -> expansion @ rest
        | None -> comps)
    | [] -> comps
  in
  drop_wrappers comps

(* ---------- primitive classification ------------------------------ *)

let starts_with_pfx pfx s =
  String.length s >= String.length pfx
  && String.sub s 0 (String.length pfx) = pfx

(* Name-based effect classification of a (normalized) callee.  Applied
   to the use-site name so fixture-local stub modules ([module Engine =
   struct ... end]) classify exactly like the real ones. *)
let classify_comps comps =
  let rcomps = List.rev comps in
  match rcomps with
  | ("set" | "unsafe_set" | "push" | "own" | "append_string") :: rest
    when List.exists (fun c -> c = "Bigvec") rest ->
      bit Mut
  | ("set" | "exchange" | "compare_and_set") :: "Atomic" :: _ ->
      bit Pub (* refined by element type at the call site *)
  | "fsync" :: ("Unix" | "UnixLabels") :: _ -> bit Fsync
  | ("write" | "write_substring" | "single_write")
    :: ("Unix" | "UnixLabels")
    :: _ ->
      bit Append
  | ("output_string" | "output_bytes" | "output_substring" | "output_char")
    :: _ ->
      bit Append
  | "rename" :: ("Sys" | "Unix") :: _ -> bit Rename
  | "replica_apply" :: _ -> bit Ack
  | name :: _
    when starts_with_pfx "check_" name || starts_with_pfx "validate_" name ->
      bit Validate
  | _ -> 0

let is_mutex_op comps op =
  match List.rev comps with o :: "Mutex" :: _ -> o = op | _ -> false

let is_fun_protect comps = comps = [ "Fun"; "protect" ]

let is_spawn comps =
  match comps with
  | [ "Domain"; "spawn" ] | [ "Thread"; "create" ] -> true
  | _ -> false

let is_pin comps =
  match List.rev comps with "pin" :: _ -> true | _ -> false

(* ---------- the analysis state ------------------------------------ *)

type graph = {
  defs : (string, def) Hashtbl.t;
  order : string list ref; (* insertion order, for deterministic output *)
  mutable unit_allows : (string * (Lint.rule * string) list) list;
  mutable findings : Lint.finding list;
}

let new_graph () =
  { defs = Hashtbl.create 256; order = ref []; unit_allows = []; findings = [] }

let add_def g d =
  if not (Hashtbl.mem g.defs d.key) then begin
    Hashtbl.replace g.defs d.key d;
    g.order := d.key :: !(g.order)
  end

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) =
  loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let report_at g rule ~file ~line ~col ~witness message =
  g.findings <-
    { Lint.rule; file; line; col; message; witness } :: g.findings

let report g rule (loc : Location.t) ~file ~witness message =
  report_at g rule ~file ~line:(line_of loc) ~col:(col_of loc) ~witness
    message

(* Collect allows from a Parsetree attribute list; malformed ones are
   A0 findings. *)
let allows_of g ~file attrs =
  List.fold_left
    (fun acc attr ->
      match Lint.parse_allow_attr attr with
      | None -> acc
      | Some (Ok (rule, reason), _) -> (rule, reason) :: acc
      | Some (Error why, loc) ->
          report g Lint.A0 loc ~file ~witness:[] why;
          acc)
    [] attrs

let def_allows g d =
  let unit_a =
    match List.assoc_opt d.root_unit g.unit_allows with
    | Some l -> l
    | None -> []
  in
  d.allows @ unit_a

let allowed g d rule = List.exists (fun (r, _) -> r = rule) (def_allows g d)

(* ---------- Typedtree walk ---------------------------------------- *)

open Typedtree

type wctx = {
  g : graph;
  unit_name : string;
  file : string;
  aliases : (string, string list) Hashtbl.t;
  (* resolution scopes, innermost first: (key prefix, names) *)
  mutable scopes : (string * SS.t ref) list;
  mutable depth : int; (* mutex nesting *)
  mutable pinned : SS.t; (* idents bound to Engine.pin results *)
  cur : def;
}

let pat_var_names p =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) it (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> acc := Ident.name id :: !acc
          | Tpat_alias (_, id, _) -> acc := Ident.name id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

(* First integer/string constant in a pattern, pre-order. *)
exception Found_const of const

let first_pat_const : type k. k general_pattern -> const option =
 fun p ->
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) it (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_constant (Asttypes.Const_int i) -> raise (Found_const (Ci i))
          | Tpat_constant (Asttypes.Const_string (s, _, _)) ->
              raise (Found_const (Cs s))
          | _ -> ());
          Tast_iterator.default_iterator.pat it p);
    }
  in
  match it.pat it p with () -> None | exception Found_const c -> Some c

let first_expr_const e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_constant (Asttypes.Const_int i) -> raise (Found_const (Ci i))
          | Texp_constant (Asttypes.Const_string (s, _, _)) ->
              raise (Found_const (Cs s))
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  match it.expr it e with () -> None | exception Found_const c -> Some c

(* Is [ty] an [X Atomic.t] whose element is interesting for D1/D2 —
   i.e. not a bool/int/char/unit/float flag or counter?  Epoch cells
   hold a record/constructed snapshot value; stop flags and watermark
   counters hold primitives. *)
let atomic_elt_interesting (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (_, [ elt ], _) -> (
      match Types.get_desc elt with
      | Types.Tconstr (p, _, _) ->
          not
            (Path.same p Predef.path_bool || Path.same p Predef.path_int
           || Path.same p Predef.path_char || Path.same p Predef.path_unit
           || Path.same p Predef.path_float || Path.same p Predef.path_string)
      | _ -> false)
  | _ -> false

let resolve ctx comps =
  match comps with
  | [ single ] -> (
      let scope =
        List.find_opt (fun (_, names) -> SS.mem single !names) ctx.scopes
      in
      match scope with
      | Some (prefix, _) -> prefix ^ "." ^ single
      | None -> single)
  | _ ->
      let joined = String.concat "." comps in
      let rec try_prefixes = function
        | [] -> joined
        | (prefix, _) :: rest ->
            let cand = prefix ^ "." ^ joined in
            if Hashtbl.mem ctx.g.defs cand then cand else try_prefixes rest
      in
      if Hashtbl.mem ctx.g.defs joined then joined
      else try_prefixes ctx.scopes

let emit ctx ev = ctx.cur.events <- ev :: ctx.cur.events

(* Ack/Validate classifications stay on the call event (D3 inspects
   [callee_prims]); emitting them as prims too would double-report. *)
let emit_prims ctx prims ~desc loc =
  List.iter
    (fun p ->
      if has prims p then
        emit ctx (Eprim (p, desc, loc, ctx.depth > 0)))
    [ Mut; Pub; Fsync; Append; Rename ]

(* Does [e] syntactically mention one of [cur]'s functional params or a
   pinned ident?  Used for wraps_lock detection and D2b. *)
let rec base_ident e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (Ident.name id)
  | Texp_field (inner, _, _) -> base_ident inner
  | _ -> None

let rec walk ctx e =
  let pushed = allows_of ctx.g ~file:ctx.file e.exp_attributes in
  if pushed <> [] then ctx.cur.allows <- pushed @ ctx.cur.allows;
  (match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _)
    when ctx.depth > 0 && SS.mem (Ident.name id) ctx.cur.params ->
      (* mentioning a functional parameter under the lock: this def is a
         lock wrapper (with_lock's [Fun.protect ... f] shape) *)
      ctx.cur.wraps_lock <- true
  | Texp_apply (fn, args) -> walk_apply ctx e fn args
  | Texp_let (_, vbs, body) ->
      List.iter (walk_binding ctx) vbs;
      walk ctx body
  | Texp_function { cases; _ } ->
      collect_match_tags ctx cases;
      List.iter (fun c -> walk_case ctx c) cases
  | Texp_match (scrut, cases, _) ->
      walk ctx scrut;
      collect_match_tags ctx cases;
      List.iter (fun c -> walk_case ctx c) cases
  | Texp_variant (label, argo) ->
      (match argo with Some a -> walk ctx a | None -> ());
      if label = "Synced" then
        emit ctx (Eprim (Ack, "`Synced", e.exp_loc, ctx.depth > 0))
  | Texp_sequence (a, b) ->
      walk ctx a;
      walk ctx b
  | Texp_ifthenelse (c, t, eo) ->
      walk ctx c;
      walk ctx t;
      (match eo with Some x -> walk ctx x | None -> ())
  | Texp_try (body, cases) ->
      walk ctx body;
      List.iter (fun c -> walk_case ctx c) cases
  | _ -> fallback ctx e);
  ()

and fallback ctx e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ e -> walk ctx e);
    }
  in
  Tast_iterator.default_iterator.expr it e

and walk_case : type k. wctx -> k case -> unit =
 fun ctx c ->
  (match c.c_guard with Some g -> walk ctx g | None -> ());
  walk ctx c.c_rhs

and collect_match_tags : type k. wctx -> k case list -> unit =
 fun ctx cases ->
  if List.length cases > 1 then
    List.iter
      (fun c ->
        (match first_pat_const c.c_lhs with
        | Some cst -> ctx.cur.pat_tags <- cst :: ctx.cur.pat_tags
        | None -> ());
        match first_expr_const c.c_rhs with
        | Some cst -> ctx.cur.body_tags <- cst :: ctx.cur.body_tags
        | None -> ())
      cases

and walk_binding ctx vb =
  let pushed = allows_of ctx.g ~file:ctx.file vb.vb_attributes in
  if pushed <> [] then ctx.cur.allows <- pushed @ ctx.cur.allows;
  let names = pat_var_names vb.vb_pat in
  (* a local function becomes a scoped sub-def with call edges *)
  match (names, is_function vb.vb_expr) with
  | [ name ], true ->
      let key = ctx.cur.key ^ "." ^ name in
      (match ctx.scopes with
      | (_, scope) :: _ -> scope := SS.add name !scope
      | [] -> ());
      walk_def ctx ~key ~loc:vb.vb_pat.pat_loc ~is_lambda:false vb.vb_expr
  | _ -> (
      (* track idents bound to Engine.pin results for D2b *)
      (match (names, pin_rhs ctx vb.vb_expr) with
      | [ name ], true -> ctx.pinned <- SS.add name ctx.pinned
      | _ -> ());
      walk ctx vb.vb_expr)

and is_function e =
  match e.exp_desc with Texp_function _ -> true | _ -> false

and pin_rhs ctx e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) ->
          is_pin (normalize_comps ~aliases:ctx.aliases (Path.name p))
      | _ -> false)
  | Texp_field (inner, _, _) -> pin_rhs ctx inner
  | _ -> false

(* Walk a function definition (top-level, local, or lambda literal)
   into its own [def], sharing the ctx scopes/aliases.  Lock depth and
   pinned set are saved and reset: a new function body starts outside
   any critical section of its own. *)
and walk_def ctx ~key ~loc ~is_lambda fn_expr =
  let parent = ctx.cur in
  let d =
    match Hashtbl.find_opt ctx.g.defs key with
    | Some d -> d
    | None ->
        let d =
          {
            key;
            dfile = ctx.file;
            dline = line_of loc;
            root_unit = parent.root_unit;
            scope_d1 = parent.scope_d1;
            scope_d3 = parent.scope_d3;
            is_lambda;
            events = [];
            params = SS.empty;
            wraps_lock = false;
            is_ctor = false;
            allows = (if is_lambda then parent.allows else []);
            pat_tags = [];
            body_tags = [];
          }
        in
        add_def ctx.g d;
        d
  in
  let saved_depth = ctx.depth and saved_pinned = ctx.pinned in
  ctx.depth <- 0;
  ctx.pinned <- SS.empty;
  let rec unwrap e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs; _ } ]; _ } ->
        List.iter
          (fun n -> d.params <- SS.add n d.params)
          (pat_var_names c_lhs);
        unwrap c_rhs
    | _ -> e
  in
  let body = unwrap fn_expr in
  d.is_ctor <- returns_handle fn_expr;
  let inner = { ctx with cur = d } in
  (* inner is a copy: restore mutable scope fields on the shared graph
     only; depth/pinned live per-copy *)
  walk inner body;
  ctx.depth <- saved_depth;
  ctx.pinned <- saved_pinned

and returns_handle fn_expr =
  (* a constructor returns a [t] — possibly inside a tuple or a
     [result]/[option]: [open_replica : dir -> (t * lsn, error) result]
     is as much a constructor as [make : ... -> t] *)
  let rec final ty =
    match Types.get_desc ty with
    | Types.Tarrow (_, _, r, _) -> final r
    | Types.Tpoly (t, _) -> final t
    | _ -> ty
  in
  let rec mentions_t depth ty =
    depth < 3
    &&
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) -> (
        match List.rev (String.split_on_char '.' (Path.name p)) with
        | "t" :: _ -> true
        | _ -> List.exists (mentions_t (depth + 1)) args)
    | Types.Ttuple l -> List.exists (mentions_t (depth + 1)) l
    | _ -> false
  in
  mentions_t 0 (final fn_expr.exp_type)

and walk_apply ctx app fn args =
  match fn.exp_desc with
  | Texp_field (recv, _, lbl) when lbl.Types.lbl_name = "log_commit" ->
      (* the durability hook: a [log_commit] record field carries the
         append+fsync contract (Txn.manager / Durable wiring) *)
      walk ctx recv;
      List.iter (fun (_, a) -> Option.iter (walk ctx) a) args;
      emit ctx (Eprim (Append, "log_commit hook", app.exp_loc, ctx.depth > 0));
      emit ctx (Eprim (Fsync, "log_commit hook", app.exp_loc, ctx.depth > 0))
  | Texp_ident (path, _, _) -> (
      let comps = normalize_comps ~aliases:ctx.aliases (Path.name path) in
      let joined = String.concat "." comps in
      (* applying a functional param under the lock: lock wrapper *)
      (match path with
      | Path.Pident id
        when ctx.depth > 0 && SS.mem (Ident.name id) ctx.cur.params ->
          ctx.cur.wraps_lock <- true
      | _ -> ());
      if is_mutex_op comps "lock" then begin
        List.iter (fun (_, a) -> Option.iter (walk ctx) a) args;
        emit ctx Elock;
        ctx.depth <- ctx.depth + 1
      end
      else if is_mutex_op comps "unlock" then begin
        List.iter (fun (_, a) -> Option.iter (walk ctx) a) args;
        emit ctx Eunlock;
        ctx.depth <- max 0 (ctx.depth - 1)
      end
      else if is_mutex_op comps "protect" then begin
        let lambdas, others = split_lambda_args args in
        List.iter (walk ctx) others;
        emit ctx Elock;
        ctx.depth <- ctx.depth + 1;
        List.iter (fun (l : expression) -> walk_inline ctx l) lambdas;
        emit ctx Eunlock;
        ctx.depth <- max 0 (ctx.depth - 1)
      end
      else if is_fun_protect comps then begin
        (* walk the guarded body first, then ~finally, inline: the
           events happen here, at the current lock depth *)
        let finally, body =
          List.partition
            (fun (l, _) -> l = Asttypes.Labelled "finally")
            args
        in
        List.iter (fun (_, a) -> Option.iter (walk_inline ctx) a) body;
        List.iter (fun (_, a) -> Option.iter (walk_inline ctx) a) finally
      end
      else if is_spawn comps then begin
        (* the spawned body runs unlocked on another domain/thread *)
        let saved = ctx.depth in
        ctx.depth <- 0;
        List.iter (fun (_, a) -> Option.iter (walk_inline ctx) a) args;
        ctx.depth <- saved
      end
      else begin
        let prims = classify_comps comps in
        let prims =
          if has prims Pub then
            (* only Atomic.set on a non-primitive cell is a publication *)
            match first_nolabel_arg args with
            | Some a when atomic_elt_interesting a.exp_type -> prims
            | Some _ | None -> prims land lnot (bit Pub)
          else prims
        in
        let lambdas, others = split_lambda_args args in
        List.iter (walk ctx) others;
        let lam_keys =
          List.map
            (fun (l : expression) ->
              let key =
                Printf.sprintf "%s.<fun:%d>" ctx.cur.key (line_of l.exp_loc)
              in
              walk_def ctx ~key ~loc:l.exp_loc ~is_lambda:true l;
              key)
            lambdas
        in
        let pinned_arg =
          List.find_map
            (fun (_, a) ->
              match a with
              | Some a -> (
                  match base_ident a with
                  | Some n when SS.mem n ctx.pinned -> Some n
                  | _ -> None)
              | None -> None)
            args
        in
        emit_prims ctx prims ~desc:joined app.exp_loc;
        emit ctx
          (Ecall
             {
               callee = resolve ctx comps;
               callee_prims = prims;
               lambdas = lam_keys;
               pinned_arg;
               loc = app.exp_loc;
               locked = ctx.depth > 0;
             })
      end)
  | _ ->
      walk ctx fn;
      List.iter (fun (_, a) -> Option.iter (walk ctx) a) args

and split_lambda_args args =
  List.fold_right
    (fun (_, a) (lams, others) ->
      match a with
      | Some a when is_function a -> (a :: lams, others)
      | Some a -> (lams, a :: others)
      | None -> (lams, others))
    args ([], [])

and first_nolabel_arg args =
  List.find_map
    (fun (l, a) -> if l = Asttypes.Nolabel then a else None)
    args

(* [walk_inline]: walk a lambda literal's body as part of the current
   def (its effects happen here, at the current lock depth); a non-
   lambda expression (e.g. a named function passed by reference) is
   walked normally. *)
and walk_inline ctx e =
  match e.exp_desc with
  | Texp_function _ ->
      let rec unwrap e =
        match e.exp_desc with
        | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
            unwrap c_rhs
        | _ -> e
      in
      walk ctx (unwrap e)
  | _ -> walk ctx e

(* ---------- unit processing --------------------------------------- *)

let normalize_unit modname =
  String.concat "." (drop_wrappers (split_wrapped modname))

(* D1 applies to the serving/replication surface; D3 to the durability
   path.  Fixture sources (anything outside lib/) get every scope so a
   single file can exercise any rule. *)
let scopes_of_file file =
  let comps = String.split_on_char '/' file in
  let mem c = List.mem c comps in
  if mem "lib" then (mem "serve" || mem "repl", mem "wal" || mem "txn" || mem "repl")
  else (true, true)

let process_unit g ~unit_name ~file str =
  let scope_d1, scope_d3 = scopes_of_file file in
  let aliases = Hashtbl.create 8 in
  let module_scopes : (string, SS.t ref) Hashtbl.t = Hashtbl.create 8 in
  let scope_ref prefix =
    match Hashtbl.find_opt module_scopes prefix with
    | Some r -> r
    | None ->
        let r = ref SS.empty in
        Hashtbl.replace module_scopes prefix r;
        r
  in
  let fresh_def ~key ~line =
    {
      key;
      dfile = file;
      dline = line;
      root_unit = unit_name;
      scope_d1;
      scope_d3;
      is_lambda = false;
      events = [];
      params = SS.empty;
      wraps_lock = false;
      is_ctor = false;
      allows = [];
      pat_tags = [];
      body_tags = [];
    }
  in
  (* pass A: register every function definition and module alias so
     forward references resolve during the body walk *)
  let rec register prefix items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match (pat_var_names vb.vb_pat, is_function vb.vb_expr) with
                | [ name ], true ->
                    let key = prefix ^ "." ^ name in
                    add_def g
                      (fresh_def ~key ~line:(line_of vb.vb_pat.pat_loc));
                    let r = scope_ref prefix in
                    r := SS.add name !r
                | _ -> ())
              vbs
        | Tstr_module mb -> register_module prefix mb
        | Tstr_recmodule mbs -> List.iter (register_module prefix) mbs
        | _ -> ())
      items
  and register_module prefix mb =
    match mb.mb_id with
    | None -> ()
    | Some id ->
        let name = Ident.name id in
        let rec go me =
          match me.mod_desc with
          | Tmod_ident (p, _) ->
              Hashtbl.replace aliases name
                (normalize_comps ~aliases (Path.name p))
          | Tmod_structure s -> register (prefix ^ "." ^ name) s.str_items
          | Tmod_constraint (inner, _, _, _) -> go inner
          | Tmod_functor (_, body) -> go body
          | _ -> ()
        in
        go mb.mb_expr
  in
  register unit_name str.str_items;
  (* pass B: walk bodies *)
  let toplevel = fresh_def ~key:(unit_name ^ ".<toplevel>") ~line:1 in
  let rec process prefix scopes items =
    let ctx =
      {
        g;
        unit_name;
        file;
        aliases;
        scopes;
        depth = 0;
        pinned = SS.empty;
        cur = toplevel;
      }
    in
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match (pat_var_names vb.vb_pat, is_function vb.vb_expr) with
                | [ name ], true -> (
                    let key = prefix ^ "." ^ name in
                    (match Hashtbl.find_opt g.defs key with
                    | Some d ->
                        d.allows <-
                          allows_of g ~file vb.vb_attributes @ d.allows
                    | None -> ());
                    walk_def ctx ~key ~loc:vb.vb_pat.pat_loc
                      ~is_lambda:false vb.vb_expr)
                | _ -> ())
              vbs
        | Tstr_module mb -> process_module prefix scopes mb
        | Tstr_recmodule mbs ->
            List.iter (process_module prefix scopes) mbs
        | Tstr_attribute attr ->
            let a = allows_of g ~file [ attr ] in
            if a <> [] then
              g.unit_allows <-
                (match List.assoc_opt unit_name g.unit_allows with
                | Some prev ->
                    (unit_name, a @ prev)
                    :: List.remove_assoc unit_name g.unit_allows
                | None -> (unit_name, a) :: g.unit_allows)
        | _ -> ())
      items
  and process_module prefix scopes mb =
    match mb.mb_id with
    | None -> ()
    | Some id ->
        let name = Ident.name id in
        let rec go me =
          match me.mod_desc with
          | Tmod_structure s ->
              let p = prefix ^ "." ^ name in
              process p ((p, scope_ref p) :: scopes) s.str_items
          | Tmod_constraint (inner, _, _, _) -> go inner
          | Tmod_functor (_, body) -> go body
          | _ -> ()
        in
        go mb.mb_expr
  in
  process unit_name [ (unit_name, scope_ref unit_name) ] str.str_items

(* ---------- fixpoint summaries ------------------------------------ *)

(* Calls that build and return fresh state — constructors, and
   copy/snapshot helpers — own the value they mutate: their mutation
   and publication effects are confined to the value under
   construction and do not escape to the caller's store. *)
let confined_callee g callee =
  (match List.rev (String.split_on_char '.' callee) with
  | ("copy" | "snapshot") :: _ -> true
  | _ -> false)
  ||
  match Hashtbl.find_opt g.defs callee with
  | Some d -> d.is_ctor
  | None -> false

let summarize g =
  let sums : (string, summary) Hashtbl.t = Hashtbl.create 256 in
  let keys = List.rev !(g.order) in
  List.iter
    (fun k ->
      let d = Hashtbl.find g.defs k in
      d.events <- List.rev d.events;
      Hashtbl.replace sums k
        {
          eff = 0;
          acquires =
            List.exists (function Elock -> true | _ -> false) d.events;
          unprot = None;
          pub_open = false;
          mut_open = false;
        })
    keys;
  let sum_of k = Hashtbl.find_opt sums k in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun k ->
        let d = Hashtbl.find g.defs k in
        let s = Hashtbl.find sums k in
        let eff = ref s.eff in
        let unprot = ref s.unprot in
        let pub_open = ref s.pub_open in
        let mut_open = ref s.mut_open in
        List.iter
          (fun ev ->
            match ev with
            | Elock | Eunlock -> ()
            | Eprim (p, desc, loc, locked) ->
                eff := !eff lor bit p;
                if (p = Mut || p = Pub) && not locked then begin
                  if !unprot = None then
                    unprot := Some [ (desc, d.dfile, line_of loc) ];
                  if p = Pub then pub_open := true;
                  if p = Mut then mut_open := true
                end
            | Ecall c ->
                let cs = sum_of c.callee in
                let cd = Hashtbl.find_opt g.defs c.callee in
                let lams = List.filter_map sum_of c.lambdas in
                let wraps =
                  match cd with Some d -> d.wraps_lock | None -> false
                in
                let callee_allowed r =
                  match cd with Some d -> allowed g d r | None -> false
                in
                eff :=
                  List.fold_left
                    (fun a (s : summary) -> a lor s.eff)
                    (match cs with Some s -> !eff lor s.eff | None -> !eff)
                    lams;
                let confined = confined_callee g c.callee in
                if (not c.locked) && !unprot = None && not confined then begin
                  let contrib =
                    if callee_allowed Lint.D1 then None
                    else
                      match cs with
                      | Some s when s.unprot <> None -> s.unprot
                      | _ ->
                          if wraps then None
                          else
                            List.find_map (fun (s : summary) -> s.unprot) lams
                  in
                  match contrib with
                  | Some chain ->
                      unprot :=
                        Some ((c.callee, d.dfile, line_of c.loc) :: chain)
                  | None -> ()
                end;
                let closed =
                  match cs with Some s -> s.acquires | None -> false
                in
                if (not c.locked) && (not closed) && (not confined)
                   && not (callee_allowed Lint.D2)
                then begin
                  let lam_flag f =
                    (not wraps)
                    && List.exists (fun (s : summary) -> f s) lams
                  in
                  (match cs with
                  | Some s when s.pub_open -> pub_open := true
                  | _ -> if lam_flag (fun s -> s.pub_open) then pub_open := true);
                  match cs with
                  | Some s when s.mut_open -> mut_open := true
                  | _ -> if lam_flag (fun s -> s.mut_open) then mut_open := true
                end)
          d.events;
        (* allows mask contributions at the source *)
        if allowed g d Lint.D1 then unprot := None;
        if allowed g d Lint.D2 then begin
          pub_open := false;
          mut_open := false
        end;
        if
          !eff <> s.eff
          || (s.unprot = None && !unprot <> None)
          || !pub_open <> s.pub_open
          || !mut_open <> s.mut_open
        then begin
          s.eff <- !eff;
          if s.unprot = None then s.unprot <- !unprot;
          s.pub_open <- !pub_open;
          s.mut_open <- !mut_open;
          changed := true
        end)
      keys
  done;
  sums

(* ---------- rule checks ------------------------------------------- *)

let ends_with suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let last_comp key =
  match List.rev (String.split_on_char '.' key) with
  | c :: _ -> c
  | [] -> key

(* D1: reader-reachable entry points must not reach an unprotected
   mutation/publication.  Entry points are the top-level functions of
   serve/repl units, minus constructors (they own the value they build),
   [_locked] helpers (the caller-holds-the-lock naming contract this
   rule makes enforceable) and the lock wrapper itself. *)
let check_d1 g sums =
  List.iter
    (fun k ->
      let d = Hashtbl.find g.defs k in
      let top_level = List.length (String.split_on_char '.' d.key) = 2 in
      let name = last_comp d.key in
      if
        d.scope_d1 && top_level && (not d.is_lambda) && (not d.is_ctor)
        && (not (ends_with "_locked" name))
        && (not d.wraps_lock)
        && not (allowed g d Lint.D1)
      then
        match (Hashtbl.find sums k).unprot with
        | Some chain ->
            let effect_name =
              match List.rev chain with (what, _, _) :: _ -> what | [] -> "?"
            in
            report_at g Lint.D1 ~file:d.dfile ~line:d.dline ~col:0
              ~witness:((d.key, d.dfile, d.dline) :: chain)
              (Printf.sprintf
                 "entry point %s reaches %s without holding the writer lock \
                  (single-writer MVCC contract)"
                 d.key effect_name)
        | None -> ())
    (List.rev !(g.order))

(* D2: (a) no mutation after an epoch publication in the same critical
   section; (b) no mutation of a value that flowed out of Engine.pin. *)
let check_d2 g sums =
  List.iter
    (fun k ->
      let d = Hashtbl.find g.defs k in
      if not (allowed g d Lint.D2) then begin
        let published = ref None in
        List.iter
          (fun ev ->
            match ev with
            | Elock -> ()
            | Eunlock -> published := None
            | Eprim (Pub, desc, loc, _) ->
                if !published = None then
                  published := Some (desc, line_of loc)
            | Eprim (Mut, desc, loc, _) -> (
                match !published with
                | Some (pd, pl) ->
                    report g Lint.D2 loc ~file:d.dfile
                      ~witness:
                        [
                          (d.key, d.dfile, d.dline);
                          (desc, d.dfile, line_of loc);
                        ]
                      (Printf.sprintf
                         "store mutation (%s) after epoch publication (%s, \
                          line %d) in the same critical section: pinned \
                          readers share these chunks"
                         desc pd pl)
                | None -> ())
            | Eprim _ -> ()
            | Ecall c -> (
                let cs = Hashtbl.find_opt sums c.callee in
                let cd = Hashtbl.find_opt g.defs c.callee in
                let wraps =
                  match cd with Some d -> d.wraps_lock | None -> false
                in
                let callee_allowed =
                  match cd with
                  | Some d -> allowed g d Lint.D2
                  | None -> false
                in
                let closed =
                  confined_callee g c.callee
                  || match cs with Some s -> s.acquires | None -> false
                in
                let lam_flag f =
                  (not wraps)
                  && List.exists
                       (fun lk ->
                         match Hashtbl.find_opt sums lk with
                         | Some s -> f s
                         | None -> false)
                       c.lambdas
                in
                let flag f =
                  (not closed) && (not callee_allowed)
                  && ((match cs with Some s -> f s | None -> false)
                     || lam_flag f)
                in
                (* D2b: pinned value passed to a mutator (passing it to
                   a copy/snapshot/constructor is the intended use) *)
                (match c.pinned_arg with
                | Some n
                  when (not (confined_callee g c.callee))
                       && (has c.callee_prims Mut
                          || (match cs with
                             | Some s -> has s.eff Mut
                             | None -> false)) ->
                    report g Lint.D2 c.loc ~file:d.dfile
                      ~witness:
                        [
                          (d.key, d.dfile, d.dline);
                          (c.callee, d.dfile, line_of c.loc);
                        ]
                      (Printf.sprintf
                         "mutation of %s, which flowed out of Engine.pin: \
                          pinned snapshots are immutable (COW shared-chunk \
                          invariant)"
                         n)
                | _ -> ());
                (* D2a: callee-mediated mutation after publication *)
                (match !published with
                | Some (pd, pl) when flag (fun s -> s.mut_open) ->
                    report g Lint.D2 c.loc ~file:d.dfile
                      ~witness:
                        [
                          (d.key, d.dfile, d.dline);
                          (c.callee, d.dfile, line_of c.loc);
                        ]
                      (Printf.sprintf
                         "store mutation via %s after epoch publication \
                          (%s, line %d) in the same critical section"
                         c.callee pd pl)
                | _ -> ());
                if !published = None && flag (fun s -> s.pub_open) then
                  published := Some (c.callee, line_of c.loc)))
          d.events
      end)
    (List.rev !(g.order))

(* D3: validate before append; fsync before ack; file+dir fsync around
   a rename. *)
let check_d3 g sums =
  List.iter
    (fun k ->
      let d = Hashtbl.find g.defs k in
      if d.scope_d3 && not (allowed g d Lint.D3) then begin
        let evs = Array.of_list d.events in
        let eff_of ev =
          match ev with
          | Eprim (p, _, _, _) -> bit p
          | Ecall c -> (
              match Hashtbl.find_opt sums c.callee with
              | Some s -> s.eff
              | None -> 0)
          | Elock | Eunlock -> 0
        in
        (* the validate-before-append check wants *direct* append
           evidence (an append primitive or an append-named callee):
           transitive may-append effects from exclusive match arms
           (e.g. a reseed branch next to a validate branch) would
           otherwise order-poison unrelated branches *)
        let direct_append ev =
          match ev with
          | Eprim (Append, _, _, _) -> true
          | Ecall c ->
              has c.callee_prims Append
              || starts_with_pfx "append" (last_comp c.callee)
          | Eprim _ | Elock | Eunlock -> false
        in
        let seen_append = ref false and seen_fsync = ref false in
        Array.iteri
          (fun i ev ->
            (match ev with
            | Eprim (Ack, desc, loc, _) ->
                if not !seen_fsync then
                  report g Lint.D3 loc ~file:d.dfile
                    ~witness:
                      [ (d.key, d.dfile, d.dline); (desc, d.dfile, line_of loc) ]
                    (Printf.sprintf
                       "%s acknowledges a commit without a dominating fsync \
                        (append -> fsync -> ack)"
                       desc)
            | Eprim (Rename, desc, loc, _) ->
                let fsync_after = ref false in
                for j = i + 1 to Array.length evs - 1 do
                  if has (eff_of evs.(j)) Fsync then fsync_after := true
                done;
                if not (!seen_fsync && !fsync_after) then
                  report g Lint.D3 loc ~file:d.dfile
                    ~witness:
                      [ (d.key, d.dfile, d.dline); (desc, d.dfile, line_of loc) ]
                    (Printf.sprintf
                       "%s without a file fsync before and a directory fsync \
                        after: the rename is not durable"
                       desc)
            | Ecall c ->
                if has c.callee_prims Validate && !seen_append then
                  report g Lint.D3 c.loc ~file:d.dfile
                    ~witness:
                      [
                        (d.key, d.dfile, d.dline);
                        (c.callee, d.dfile, line_of c.loc);
                      ]
                    (Printf.sprintf
                       "validation (%s) after the WAL append: a committed \
                        record could fail replay (validate before logging)"
                       c.callee);
                if has c.callee_prims Ack && not !seen_fsync then
                  report g Lint.D3 c.loc ~file:d.dfile
                    ~witness:
                      [
                        (d.key, d.dfile, d.dline);
                        (c.callee, d.dfile, line_of c.loc);
                      ]
                    (Printf.sprintf
                       "%s applies a committed record without a dominating \
                        fsync (append -> fsync -> ack)"
                       c.callee)
            | Eprim _ | Elock | Eunlock -> ());
            if direct_append ev then seen_append := true;
            if has (eff_of ev) Fsync then seen_fsync := true)
          evs
      end)
    (List.rev !(g.order))

(* D4: encoder/decoder tag-set equality for the configured codec
   pairs, matched by canonical-name suffix so fixture-local stub
   modules pair up exactly like the real ones. *)
let codec_pairs =
  [
    ("Wal.encode", "Wal.parse_payload");
    ("Protocol.encode_request", "Protocol.decode_request");
    ("Protocol.encode_response", "Protocol.decode_response");
    ("Store.kind_to_int", "Store.kind_of_int");
  ]

let check_d4 g =
  let keys = List.rev !(g.order) in
  List.iter
    (fun (enc_suffix, dec_suffix) ->
      let matching suffix =
        List.filter_map
          (fun k ->
            if k = suffix then Some ("", Hashtbl.find g.defs k)
            else if ends_with ("." ^ suffix) k then
              Some
                ( String.sub k 0 (String.length k - String.length suffix),
                  Hashtbl.find g.defs k )
            else None)
          keys
      in
      let encs = matching enc_suffix and decs = matching dec_suffix in
      List.iter
        (fun (prefix, enc) ->
          match List.assoc_opt prefix decs with
          | None -> ()
          | Some dec ->
              let tags l = List.sort_uniq compare_const l in
              let enc_tags = tags enc.body_tags
              and dec_tags = tags dec.pat_tags in
              let diff a b =
                List.filter (fun t -> not (List.mem t b)) a
              in
              let enc_only = diff enc_tags dec_tags
              and dec_only = diff dec_tags enc_tags in
              if
                (enc_only <> [] || dec_only <> [])
                && (not (allowed g enc Lint.D4))
                && not (allowed g dec Lint.D4)
              then begin
                let show = function
                  | [] -> "{}"
                  | l ->
                      "{"
                      ^ String.concat ", " (List.map const_to_string l)
                      ^ "}"
                in
                report_at g Lint.D4 ~file:dec.dfile ~line:dec.dline ~col:0
                  ~witness:
                    [
                      (enc.key, enc.dfile, enc.dline);
                      (dec.key, dec.dfile, dec.dline);
                    ]
                  (Printf.sprintf
                     "codec drift between %s and %s: encoder-only tags %s, \
                      decoder-only tags %s (adding a constructor must update \
                      both sides)"
                     enc.key dec.key (show enc_only) (show dec_only))
              end)
        encs)
    codec_pairs

let finalize g =
  let sums = summarize g in
  check_d1 g sums;
  check_d2 g sums;
  check_d3 g sums;
  check_d4 g;
  List.sort_uniq Lint.compare_finding g.findings

(* ---------- entry points ------------------------------------------ *)

let analyze_cmts paths =
  let g = new_graph () in
  let errors = ref [] in
  let seen_units = Hashtbl.create 32 in
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | infos -> (
          match infos.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str ->
              let unit_name = normalize_unit infos.cmt_modname in
              if not (Hashtbl.mem seen_units unit_name) then begin
                Hashtbl.replace seen_units unit_name ();
                let file =
                  match infos.cmt_sourcefile with
                  | Some f -> f
                  | None -> path
                in
                process_unit g ~unit_name ~file str
              end
          | _ -> ())
      | exception e ->
          errors :=
            Printf.sprintf "%s: cannot read cmt: %s" path
              (Printexc.to_string e)
            :: !errors)
    paths;
  match !errors with
  | [] -> Ok (finalize g)
  | errs -> Error (String.concat "\n" (List.rev errs))

let parse_source path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

let typecheck_source path =
  match
    let past = parse_source path in
    Compmisc.init_path ();
    let env = Compmisc.initial_env () in
    Typemod.type_structure env past
  with
  | str, _, _, _, _ -> Ok str
  | exception e -> (
      match Location.error_of_exn e with
      | Some (`Ok err) ->
          Error (Format.asprintf "%a" Location.print_report err)
      | Some `Already_displayed | None -> Error (Printexc.to_string e))

let unit_of_filename path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let analyze_sources paths =
  let g = new_graph () in
  let rec go = function
    | [] -> Ok (finalize g)
    | path :: rest -> (
        match typecheck_source path with
        | Ok str ->
            process_unit g ~unit_name:(unit_of_filename path) ~file:path str;
            go rest
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  go paths

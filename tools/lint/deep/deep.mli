(** xvi-lint stage 2: Typedtree-based discipline analysis (D1–D4).

    Builds per-function effect summaries and a call graph over the
    analyzed compilation units, then checks lock discipline (D1), COW
    escape (D2), durability ordering (D3) and codec exhaustiveness
    (D4).  Findings reuse {!Xvi_lint_lib.Lint.finding} and carry a
    witness call chain; suppression uses the same reasoned
    [\@xvi.lint.allow "D<n>: why"] attributes, with A0 for malformed
    ones.  See DESIGN.md "Static analysis". *)

val analyze_cmts :
  string list -> (Xvi_lint_lib.Lint.finding list, string) result
(** Analyze the given [.cmt] files as one program.  Non-implementation
    cmts are skipped; duplicate compilation units are analyzed once.
    [Error] reports unreadable cmt files. *)

val analyze_sources :
  string list -> (Xvi_lint_lib.Lint.finding list, string) result
(** Parse and typecheck the given [.ml] files in-process (against the
    toolchain stdlib only) and analyze them as one program, with every
    rule scope enabled — the fixture path.  [Error] is a parse or type
    error, reported verbatim. *)

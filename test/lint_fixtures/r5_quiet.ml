(* R5 must stay quiet: the discarded value's type is written out. *)
let drop xs = ignore (List.map succ xs : int list)

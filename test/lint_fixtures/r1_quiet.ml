(* R1 must stay quiet: specific exceptions, and a re-raised binder. *)
let parse_or_zero x =
  try int_of_string x
  with Failure _ -> 0

let parse_or_raise x =
  try int_of_string x
  with e -> raise e

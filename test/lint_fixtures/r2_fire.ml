(* R2 must fire on each partial stdlib call. *)
let first xs = List.hd xs
let third xs = List.nth xs 2
let force o = Option.get o

(* R3 must fire: polymorphic compare and hash with no comparator here. *)
let max_any a b = if compare a b >= 0 then a else b
let bucket x = Hashtbl.hash x

(* R6 must fire in lib code: libraries do not own stdout. *)
let report x = print_endline x
let trace fmt = Printf.printf fmt

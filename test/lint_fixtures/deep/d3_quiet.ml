(* D3 must stay quiet: validate -> append -> fsync -> ack, and a
   rename fsync'd on both sides (file before, directory after). *)

module Unix = struct
  let fsync (_ : out_channel) = ()
end

let replica_apply (_ : string) = ()
let check_frame (f : string) = String.length f > 0

let commit oc frame =
  if check_frame frame then begin
    output_string oc frame;
    Unix.fsync oc;
    replica_apply frame
  end

let install_snapshot oc tmp dst =
  Unix.fsync oc;
  Sys.rename tmp dst;
  Unix.fsync oc

(* Historical shape (D3): group commit acknowledged the batch to the
   waiting sessions before the batched fsync ran, so a crash between
   ack and fsync lost commits the clients had seen succeed. *)

module Unix = struct
  let fsync (_ : out_channel) = ()
end

let replica_apply (_ : int) = ()

(* the buggy shape: ack first, fsync later (or never) *)
let group_commit oc frames =
  output_string oc (String.concat "" frames);
  replica_apply (List.length frames)

(* the fixed shape fsyncs the batch before anyone hears about it *)
let group_commit_fixed oc frames =
  output_string oc (String.concat "" frames);
  Unix.fsync oc;
  replica_apply (List.length frames)

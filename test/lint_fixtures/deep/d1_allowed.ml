(* A reasoned allow silences D1; a reasonless one is A0 and does not
   suppress anything. *)

module Bigvec = struct
  type t = { mutable n : int }

  let set t (_ : int) v = t.n <- v
end

type t = { store : Bigvec.t }

let poke t i v = Bigvec.set t.store i v
[@@xvi.lint.allow "D1: fixture: single-threaded test helper owns the store"]

let prod t i v = Bigvec.set t.store i v [@@xvi.lint.allow "D1"]

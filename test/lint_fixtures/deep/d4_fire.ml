(* D4 must fire: the encoder writes a tag the decoder never matches
   (and the decoder still matches one the encoder no longer emits). *)

module Wal = struct
  type record = Commit | Insert of string | Truncate

  let encode buf r =
    match r with
    | Commit -> Buffer.add_uint8 buf 1
    | Insert s ->
        Buffer.add_uint8 buf 2;
        Buffer.add_string buf s
    | Truncate -> Buffer.add_uint8 buf 4

  let parse_payload tag s =
    match tag with
    | 1 -> Ok Commit
    | 2 -> Ok (Insert s)
    | 3 -> Ok Commit
    | _ -> Error "unknown tag"
end

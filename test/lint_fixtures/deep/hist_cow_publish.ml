(* Historical shape (D2): publish-then-extend.  The writer published
   the epoch first and kept appending into the very vectors the
   readers had just pinned; the fix is copy -> publish -> mutate the
   master only. *)

module Bigvec = struct
  type t = { mutable n : int }

  let push t v = t.n <- (t.n * 16) + v
  let copy t = { n = t.n }
end

type db = { data : Bigvec.t }
type t = { lock : Mutex.t; published : db Atomic.t; master : db }

(* the buggy shape: the published epoch and the write target alias *)
let commit_then_extend t v =
  Mutex.lock t.lock;
  Atomic.set t.published t.master;
  Bigvec.push t.master.data v;
  Mutex.unlock t.lock

(* the fixed shape publishes a copy, then extends the master *)
let commit_fixed t v =
  Mutex.lock t.lock;
  Atomic.set t.published { data = Bigvec.copy t.master.data };
  Mutex.unlock t.lock;
  Mutex.lock t.lock;
  Bigvec.push t.master.data v;
  Mutex.unlock t.lock

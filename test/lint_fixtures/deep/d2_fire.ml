(* D2 must fire: (a) mutating the store after publishing the epoch in
   the same critical section — pinned readers share those chunks; and
   (b) mutating a value that flowed out of [Engine.pin]. *)

module Bigvec = struct
  type t = { mutable n : int }

  let set t (_ : int) v = t.n <- v
end

type db = { data : Bigvec.t }
type t = { lock : Mutex.t; published : db Atomic.t; master : db }

module Engine = struct
  let pin t = Atomic.get t.published
end

(* (a): publish, then keep writing into the copy just published *)
let publish_then_touch t =
  Mutex.lock t.lock;
  Atomic.set t.published t.master;
  Bigvec.set t.master.data 0 1;
  Mutex.unlock t.lock

(* (b): a pinned snapshot is immutable *)
let scribble_on_pin t =
  Mutex.lock t.lock;
  let s = Engine.pin t in
  Bigvec.set s.data 0 1;
  Mutex.unlock t.lock

(* D1 must fire: top-level entry points that reach a store mutation or
   an epoch publication without holding the writer lock. *)

module Bigvec = struct
  type t = { mutable n : int }

  let set t (_ : int) v = t.n <- v
end

type db = { data : Bigvec.t }
type t = { lock : Mutex.t; published : db Atomic.t; master : db }

(* helper: the mutation itself, three lines below the entry point *)
let write_cell t i v = Bigvec.set t.master.data i v

(* entry point reaching the mutation through the helper, no lock *)
let insert t i v = write_cell t i v

(* entry point publishing a fresh epoch with no lock *)
let publish t = Atomic.set t.published t.master

(* Historical shape (D1): the group-commit flusher thread published a
   fresh epoch without taking the writer lock, racing the writer's
   copy-then-publish sequence.  The fixed flusher brackets the
   publication in lock/unlock. *)

module Bigvec = struct
  type t = { mutable n : int }
end

type db = { data : Bigvec.t }

type t = {
  lock : Mutex.t;
  published : db Atomic.t;
  master : db;
  stop : bool Atomic.t;
}

(* the buggy shape: one periodic tick, no lock around the publication *)
let flusher_tick t = Atomic.set t.published t.master

(* the fixed shape stays quiet *)
let flusher_tick_fixed t =
  Mutex.lock t.lock;
  if not (Atomic.get t.stop) then Atomic.set t.published t.master;
  Mutex.unlock t.lock

(* Historical shape (D4): WAL record tag 8 (Ingest_chunk) was added to
   the encoder when streaming ingest landed; a decoder that predates it
   replays the log up to the first chunk and fails.  Tag-set equality
   between [Wal.encode] and [Wal.parse_payload] catches the drift at
   build time. *)

module Wal = struct
  type record =
    | Commit
    | Insert of string
    | Delete of int
    | Ingest_chunk of string

  let encode buf r =
    match r with
    | Commit -> Buffer.add_uint8 buf 1
    | Insert s ->
        Buffer.add_uint8 buf 2;
        Buffer.add_string buf s
    | Delete n ->
        Buffer.add_uint8 buf 3;
        Buffer.add_string buf (string_of_int n)
    | Ingest_chunk s ->
        Buffer.add_uint8 buf 8;
        Buffer.add_string buf s

  (* predates streaming ingest: tag 8 is missing *)
  let parse_payload tag s =
    match tag with
    | 1 -> Ok Commit
    | 2 -> Ok (Insert s)
    | 3 -> Ok (Delete (int_of_string s))
    | _ -> Error "unknown tag"
end

(* D3 must fire: durability-ordering violations in WAL-shaped code —
   ack before fsync, validation after the append, and a snapshot
   rename with no fsync around it. *)

let replica_apply (_ : string) = ()
let check_frame (f : string) = String.length f > 0

(* ack reaches the follower before the commit record is on disk *)
let commit_no_fsync oc frame =
  output_string oc frame;
  replica_apply frame

(* the record is already appended when validation rejects it: replay
   would see a committed record that fails *)
let commit_validate_late oc frame =
  output_string oc frame;
  ignore (check_frame frame : bool)

(* neither the snapshot file nor the directory entry is durable *)
let install_snapshot tmp dst = Sys.rename tmp dst

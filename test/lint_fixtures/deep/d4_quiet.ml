(* D4 must stay quiet: encoder and decoder agree on the tag set. *)

module Wal = struct
  type record = Commit | Insert of string | Truncate

  let encode buf r =
    match r with
    | Commit -> Buffer.add_uint8 buf 1
    | Insert s ->
        Buffer.add_uint8 buf 2;
        Buffer.add_string buf s
    | Truncate -> Buffer.add_uint8 buf 3

  let parse_payload tag s =
    match tag with
    | 1 -> Ok Commit
    | 2 -> Ok (Insert s)
    | 3 -> Ok Truncate
    | _ -> Error "unknown tag"
end

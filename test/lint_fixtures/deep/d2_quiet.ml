(* D2 must stay quiet: mutation strictly precedes publication, the
   published value is a fresh copy, and pinned snapshots only flow
   into copies. *)

module Bigvec = struct
  type t = { mutable n : int }

  let set t (_ : int) v = t.n <- v
  let copy t = { n = t.n }
end

type db = { data : Bigvec.t }
type t = { lock : Mutex.t; published : db Atomic.t; master : db }

module Engine = struct
  let pin t = Atomic.get t.published
end

let commit t i v =
  Mutex.lock t.lock;
  Bigvec.set t.master.data i v;
  Atomic.set t.published { data = Bigvec.copy t.master.data };
  Mutex.unlock t.lock

(* reading (and copying) a pinned snapshot is the intended use *)
let snapshot_of_pin t =
  let s = Engine.pin t in
  Bigvec.copy s.data

(* D1 must stay quiet: the same mutation and publication, but every
   path runs under the writer lock — through the lock wrapper, or in a
   [_locked] helper whose caller holds it. *)

module Bigvec = struct
  type t = { mutable n : int }

  let set t (_ : int) v = t.n <- v
end

type db = { data : Bigvec.t }
type t = { lock : Mutex.t; published : db Atomic.t; master : db }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* caller-holds-the-lock contract, by naming convention *)
let write_cell_locked t i v = Bigvec.set t.master.data i v
let publish_locked t = Atomic.set t.published t.master

let insert t i v =
  with_lock t (fun () ->
      write_cell_locked t i v;
      publish_locked t)

(* a constructor owns the value it builds: no lock needed *)
let create () =
  { lock = Mutex.create (); published = Atomic.make { data = { Bigvec.n = 0 } };
    master = { data = { Bigvec.n = 0 } } }

(* R2 must stay quiet: a total match, and a reasoned allow. *)
let first = function
  | x :: _ -> x
  | [] -> invalid_arg "first: empty list"

let second xs =
  (List.hd xs) [@xvi.lint.allow "R2: fixture demonstrating a justified allow"]

(* R5 must fire: ignore with no type annotation. *)
let drop xs = ignore (List.map succ xs)

(* R4 must stay quiet: Fun.protect in one, a lexical close in the other. *)
let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let touch path =
  let oc = open_out path in
  close_out oc

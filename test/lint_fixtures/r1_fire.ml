(* R1 must fire: both a wildcard handler and a bound-but-unused one. *)
let parse_or_zero x =
  try int_of_string x
  with _ -> 0

let parse_or_one x =
  try int_of_string x
  with e -> 1

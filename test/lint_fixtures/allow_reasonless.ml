(* A reasonless allow is itself a finding (A0) and suppresses nothing,
   so the List.hd below still reports R2. *)
let first xs = (List.hd xs) [@xvi.lint.allow "no rule prefix here"]

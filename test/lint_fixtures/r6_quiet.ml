(* R6 must stay quiet: a log callback, and stderr (not stdout). *)
let report log x = log x
let warn fmt = Printf.eprintf fmt

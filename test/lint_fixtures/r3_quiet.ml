(* R3 must stay quiet: this module declares its own comparator, so a
   bare [compare] is that binding, not the polymorphic one. *)
type t = { id : int }

let compare a b = Int.compare a.id b.id
let max_t a b = if compare a b >= 0 then a else b
let smaller a b = Int.compare a b < 0

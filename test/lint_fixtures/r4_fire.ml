(* R4 must fire: the channel is opened and never closed in scope. *)
let read_all path =
  let ic = open_in_bin path in
  really_input_string ic (in_channel_length ic)

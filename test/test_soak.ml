(* Soak and fuzz tests: the parser must never raise on arbitrary bytes,
   a database must survive long randomized mixed-operation workloads
   with every index still validating, and randomly composed queries must
   agree between the naive and indexed evaluators. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Db = Xvi_core.Db
module Prng = Xvi_util.Prng
module Xpath = Xvi_xpath.Xpath

(* --- parser fuzz --- *)

let test_fuzz_random_bytes () =
  let rng = Prng.create 1234 in
  for _ = 1 to 2_000 do
    let len = Prng.int rng 200 in
    let s = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    match Parser.parse s with
    | Ok store -> Alcotest.(check bool) "live" true (Store.live_count store > 0)
    | Error _ -> ()
    | exception e ->
        Alcotest.failf "parser raised %s on %S" (Printexc.to_string e) s
  done

let test_fuzz_mutated_documents () =
  let rng = Prng.create 99 in
  let base = Xvi_workload.Xmark.generate ~seed:5 ~factor:0.002 () in
  for _ = 1 to 500 do
    let b = Bytes.of_string base in
    (* up to 5 random byte mutations *)
    for _ = 1 to 1 + Prng.int rng 5 do
      Bytes.set b (Prng.int rng (Bytes.length b)) (Char.chr (Prng.int rng 256))
    done;
    let s = Bytes.to_string b in
    match Parser.parse s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parser raised %s on a mutated document"
          (Printexc.to_string e)
  done

let test_fuzz_truncated_documents () =
  let base = Xvi_workload.Datasets.wiki ~seed:5 ~factor:0.0005 () in
  let rng = Prng.create 7 in
  for _ = 1 to 300 do
    let cut = Prng.int rng (String.length base) in
    match Parser.parse (String.sub base 0 cut) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parser raised %s on truncation at %d"
          (Printexc.to_string e) cut
  done

(* --- xpath parser fuzz --- *)

let test_fuzz_xpath () =
  let rng = Prng.create 31 in
  let pieces =
    [| "//"; "/"; "person"; "["; "]"; "="; "\"x\""; "42"; "@"; "*"; "."; "and";
       "or"; "text()"; "<"; ">"; "("; ")"; "contains("; ","; "fn:data(" |]
  in
  for _ = 1 to 3_000 do
    let n = 1 + Prng.int rng 8 in
    let q = String.concat "" (List.init n (fun _ -> Prng.choose rng pieces)) in
    match Xpath.parse q with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "xpath parser raised %s on %S" (Printexc.to_string e) q
  done

(* --- database soak --- *)

let soak ~seed ~rounds ~substring =
  let xml = Xvi_workload.Xmark.generate ~seed ~factor:0.008 () in
  let db =
    Db.of_xml_exn ~config:{ Db.Config.default with Db.Config.substring } xml
  in
  let store = Db.store db in
  let rng = Prng.create (seed * 31) in
  let tg = Xvi_workload.Text_gen.create (Prng.split rng) in
  let fragments =
    [|
      "<note>soak insert</note>";
      "<price>123.75</price>";
      "<meta ts=\"2005-01-01T00:00:00Z\"><v>1</v>.<w>5</w></meta>";
      "plain text insert";
    |]
  in
  for round = 1 to rounds do
    (match Prng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        (* batch of text updates *)
        let count = 1 + Prng.int rng 30 in
        let updates =
          Xvi_workload.Update_workload.random_text_updates
            ~seed:(seed + round) store ~count
        in
        Db.update_texts db updates
    | 5 | 6 ->
        (* delete a random deep element *)
        let candidates = ref [] in
        Store.iter_pre store (fun n ->
            if Store.kind store n = Store.Element && Store.level store n >= 3
            then candidates := n :: !candidates);
        (match !candidates with
        | [] -> ()
        | l -> Db.delete_subtree db (List.nth l (Prng.int rng (List.length l))))
    | 7 | 8 ->
        (* insert a fragment under a random live element *)
        let candidates = ref [] in
        Store.iter_pre store (fun n ->
            if Store.kind store n = Store.Element then candidates := n :: !candidates);
        let parent = List.nth !candidates (Prng.int rng (List.length !candidates)) in
        (match Db.insert_xml db ~parent (Prng.choose rng fragments) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "insert failed: %s" (Parser.error_to_string e))
    | _ ->
        (* query probes; they should never raise *)
        ignore (Db.lookup_string db (Xvi_workload.Text_gen.word tg));
        ignore (Db.lookup_double db (Db.Range.between 0.0 50.0));
        if substring then ignore (Db.lookup_contains db "soak"));
    if round mod 10 = 0 then
      match Db.validate db with
      | Ok () -> ()
      | Error e -> Alcotest.failf "round %d: %s" round e
  done;
  match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "final: %s" e

let test_soak_basic () = soak ~seed:41 ~rounds:60 ~substring:false
let test_soak_substring () = soak ~seed:42 ~rounds:40 ~substring:true

let test_soak_fragment_mode () =
  (* the `Fragment reconstruction mode under the same chaos *)
  let xml = Xvi_workload.Xmark.generate ~seed:43 ~factor:0.005 () in
  let store = Parser.parse_exn xml in
  let module TI = Xvi_core.Typed_index in
  let ti = TI.create ~reconstruct:`Fragment (Xvi_core.Lexical_types.double ()) store in
  let rng = Prng.create 4343 in
  for round = 1 to 50 do
    let count = 1 + Prng.int rng 20 in
    let updates =
      Xvi_workload.Update_workload.random_text_updates ~seed:(4300 + round)
        store ~count
    in
    List.iter (fun (n, v) -> Store.set_text store n v) updates;
    TI.update_texts ti store (List.map fst updates);
    if round mod 10 = 0 then
      match TI.validate ti store with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fragment round %d: %s" round e
  done

(* --- random query equivalence --- *)

let test_random_queries () =
  let xml = Xvi_workload.Xmark.generate ~seed:51 ~factor:0.01 () in
  let db =
    Db.of_xml_exn ~config:{ Db.Config.default with Db.Config.substring = true } xml
  in
  let store = Db.store db in
  let rng = Prng.create 5151 in
  let names =
    [| "person"; "item"; "open_auction"; "price"; "name"; "quantity"; "bidder";
       "initial"; "keyword"; "profile" |]
  in
  let values = [| "42"; "2"; "100.5"; "male"; "Yes"; "Creditcard" |] in
  let gen_query () =
    let buf = Buffer.create 32 in
    Buffer.add_string buf (if Prng.bool rng then "//" else "//site//");
    Buffer.add_string buf (Prng.choose rng names);
    if Prng.bool rng then begin
      Buffer.add_char buf '[';
      let operand =
        match Prng.int rng 3 with
        | 0 -> "."
        | 1 -> ".//" ^ Prng.choose rng names
        | _ -> Prng.choose rng names
      in
      (match Prng.int rng 4 with
      | 0 ->
          Buffer.add_string buf
            (Printf.sprintf "%s = \"%s\"" operand (Prng.choose rng values))
      | 1 ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %d" operand
               (Prng.choose rng [| "<"; "<="; ">"; ">=" |])
               (Prng.int rng 200))
      | 2 -> Buffer.add_string buf operand (* existence *)
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "contains(%s, \"%s\")" operand
               (Prng.choose rng [| "redit"; "male"; "xyz"; "es" |])));
      Buffer.add_char buf ']'
    end;
    Buffer.contents buf
  in
  for _ = 1 to 120 do
    let q = gen_query () in
    match Xpath.parse q with
    | Error e -> Alcotest.failf "generated query %S failed to parse: %s" q e.Xpath.message
    | Ok t ->
        let naive = Xpath.eval store t in
        let indexed = Xpath.eval_indexed db t in
        if naive <> indexed then
          Alcotest.failf "divergence on %S: naive %d vs indexed %d" q
            (List.length naive) (List.length indexed)
  done

let () =
  Alcotest.run "soak"
    [
      ( "fuzz",
        [
          Alcotest.test_case "random bytes" `Quick test_fuzz_random_bytes;
          Alcotest.test_case "mutated documents" `Quick test_fuzz_mutated_documents;
          Alcotest.test_case "truncated documents" `Quick test_fuzz_truncated_documents;
          Alcotest.test_case "xpath fragments" `Quick test_fuzz_xpath;
        ] );
      ( "soak",
        [
          Alcotest.test_case "mixed workload" `Slow test_soak_basic;
          Alcotest.test_case "with substring index" `Slow test_soak_substring;
          Alcotest.test_case "fragment mode" `Quick test_soak_fragment_mode;
        ] );
      ( "queries",
        [ Alcotest.test_case "random equivalence" `Slow test_random_queries ] );
    ]

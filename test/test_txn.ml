(* Transaction layer tests (paper Section 5.1): the commutative-commit
   property — any commit order of disjoint transactions produces the
   same indices — plus conflict detection and bookkeeping. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Txn = Xvi_txn.Txn
module Prng = Xvi_util.Prng

let fresh_db seed =
  Db.of_xml_exn (Xvi_workload.Xmark.generate ~seed ~factor:0.01 ())

let ok = function
  | Ok () -> ()
  | Error (c : Txn.conflict) -> Alcotest.failf "unexpected conflict: %s" c.Txn.reason

(* update_text returns a result since the stats/lifecycle redesign *)
let write t n v =
  match Txn.update_text t n v with
  | Ok () -> ()
  | Error `Finished -> Alcotest.fail "write: transaction already finished"
  | Error `Not_text -> Alcotest.fail "write: not a text or attribute node"

(* A canonical fingerprint of index contents: every node's string-index
   hash and double-index state/value. *)
let fingerprint db =
  let store = Db.store db in
  let si = Db.string_index db in
  let ti = Option.get (Db.typed_index db "xs:double") in
  let buf = Buffer.create 4096 in
  Store.iter_pre store (fun n ->
      match Store.kind store n with
      | Store.Element | Store.Text | Store.Attribute | Store.Document ->
          Buffer.add_string buf
            (Printf.sprintf "%d:%d:%d:%s;" n
               (Xvi_core.Hash.to_int (Xvi_core.String_index.hash_of si n))
               (Xvi_core.Typed_index.state_of ti n)
               (match Xvi_core.Typed_index.value_of ti n with
               | Some v -> Printf.sprintf "%h" v
               | None -> "-"))
      | _ -> ());
  Digest.string (Buffer.contents buf)

let test_basic_commit () =
  let db = fresh_db 21 in
  let mgr = Txn.manager db in
  let store = Db.store db in
  let texts = Store.text_nodes store in
  let t = Txn.begin_ mgr in
  write t texts.(0) "updated value";
  Alcotest.(check int) "write set" 1 (List.length (Txn.write_set t));
  ok (Txn.commit t);
  Alcotest.(check string) "applied" "updated value" (Store.text store texts.(0));
  (match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  let st = Txn.stats mgr in
  Alcotest.(check int) "committed" 1 st.Txn.committed;
  Alcotest.(check int) "no conflicts" 0 st.Txn.conflicts

let test_write_write_conflict () =
  let db = fresh_db 22 in
  let mgr = Txn.manager db in
  let texts = Store.text_nodes (Db.store db) in
  let t1 = Txn.begin_ mgr and t2 = Txn.begin_ mgr in
  write t1 texts.(5) "one";
  write t2 texts.(5) "two";
  ok (Txn.commit t1);
  (match Txn.commit t2 with
  | Ok () -> Alcotest.fail "expected a conflict"
  | Error c -> Alcotest.(check int) "conflicting node" texts.(5) c.Txn.node);
  let st = Txn.stats mgr in
  Alcotest.(check int) "aborted" 1 st.Txn.aborted;
  Alcotest.(check int) "conflicts" 1 st.Txn.conflicts;
  Alcotest.(check string) "first committer wins" "one"
    (Store.text (Db.store db) texts.(5))

let test_no_conflict_on_shared_ancestors () =
  (* two transactions updating different children of the same parent —
     both touch the same ancestors, neither conflicts (the paper's
     no-ancestor-locks claim) *)
  let db = Db.of_xml_exn "<a><b>x</b><c>y</c></a>" in
  let mgr = Txn.manager db in
  let texts = Store.text_nodes (Db.store db) in
  let t1 = Txn.begin_ mgr and t2 = Txn.begin_ mgr in
  write t1 texts.(0) "X";
  write t2 texts.(1) "Y";
  ok (Txn.commit t1);
  ok (Txn.commit t2);
  Alcotest.(check string) "root value" "XY"
    (Store.string_value (Db.store db)
       (Option.get (Store.first_child (Db.store db) Store.document)));
  match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e

let test_commutativity () =
  (* same transactions, four different commit orders, identical indices *)
  let fingerprints =
    List.map
      (fun perm ->
        let db = fresh_db 23 in
        let mgr = Txn.manager db in
        let texts = Store.text_nodes (Db.store db) in
        let mk lo =
          let t = Txn.begin_ mgr in
          for i = lo to lo + 9 do
            write t texts.(i * 3) (Printf.sprintf "v%d" i)
          done;
          t
        in
        let ts = [| mk 0; mk 10; mk 20 |] in
        List.iter (fun i -> ok (Txn.commit ts.(i))) perm;
        (match Db.validate db with
        | Ok () -> ()
        | Error e -> Alcotest.failf "validate: %s" e);
        fingerprint db)
      [ [ 0; 1; 2 ]; [ 2; 1; 0 ]; [ 1; 0; 2 ]; [ 0; 2; 1 ] ]
  in
  match fingerprints with
  | f :: rest ->
      List.iteri
        (fun i f' ->
          Alcotest.(check string) (Printf.sprintf "order %d agrees" i) f f')
        rest
  | [] -> Alcotest.fail "no fingerprints"

let test_random_interleavings () =
  (* many small transactions over random disjoint victim sets, committed
     in a random order, always equal a serial replay *)
  for seed = 1 to 10 do
    let rng = Prng.create (400 + seed) in
    let db = fresh_db 24 in
    let store = Db.store db in
    let texts = Store.text_nodes store in
    let n_txns = 6 in
    let victims =
      Prng.sample_distinct rng (n_txns * 5) (Array.length texts)
    in
    let mgr = Txn.manager db in
    let txns =
      Array.init n_txns (fun t ->
          let txn = Txn.begin_ mgr in
          for i = 0 to 4 do
            write txn
              texts.(victims.((t * 5) + i))
              (Printf.sprintf "s%d-t%d-%d" seed t i)
          done;
          txn)
    in
    let order = Array.init n_txns (fun i -> i) in
    Prng.shuffle rng order;
    Array.iter (fun i -> ok (Txn.commit txns.(i))) order;
    (match Db.validate db with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d validate: %s" seed e)
  done

let test_abort_and_finished_txns () =
  let db = fresh_db 25 in
  let mgr = Txn.manager db in
  let texts = Store.text_nodes (Db.store db) in
  let t = Txn.begin_ mgr in
  let old = Store.text (Db.store db) texts.(0) in
  write t texts.(0) "never applied";
  Txn.abort t;
  Alcotest.(check string) "abort leaves store untouched" old
    (Store.text (Db.store db) texts.(0));
  Alcotest.check_raises "commit after abort"
    (Invalid_argument "Txn.commit: transaction is finished") (fun () ->
      ignore (Txn.commit t));
  (match Txn.update_text t texts.(0) "x" with
  | Error `Finished -> ()
  | _ -> Alcotest.fail "write after abort should report `Finished");
  let t2 = Txn.begin_ mgr in
  (match Txn.update_text t2 Store.document "x" with
  | Error `Not_text -> ()
  | _ -> Alcotest.fail "element write should report `Not_text");
  let st = Txn.stats mgr in
  Alcotest.(check int) "explicit abort counted" 1 st.Txn.aborted;
  Alcotest.(check int) "explicit abort is not a conflict" 0 st.Txn.conflicts

let test_structural_delete_conflicts () =
  (* Db.delete_subtree bypasses the version table; the commit-time kind
     re-check must catch a write whose node was tombstoned after
     update_text validated it *)
  let db = Db.of_xml_exn "<a><b>x</b><c>y</c></a>" in
  let mgr = Txn.manager db in
  let store = Db.store db in
  let texts = Store.text_nodes store in
  let t = Txn.begin_ mgr in
  write t texts.(0) "doomed";
  Db.delete_subtree db (Option.get (Store.parent store texts.(0)));
  (match Txn.commit t with
  | Ok () -> Alcotest.fail "committed a write to a deleted node"
  | Error c -> Alcotest.(check int) "conflicting node" texts.(0) c.Txn.node);
  let st = Txn.stats mgr in
  Alcotest.(check int) "counted as conflict" 1 st.Txn.conflicts;
  Alcotest.(check int) "counted as abort" 1 st.Txn.aborted;
  match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e

(* Drive many random interleavings and require the manager's counters to
   reconcile exactly with what the driver observed: every begun
   transaction ends up committed or aborted, and [conflicts] counts
   precisely the commits lost to first-committer-wins (never explicit
   aborts). *)
let test_stats_reconcile () =
  for round = 0 to 19 do
    let rng = Prng.create (900 + round) in
    let db = fresh_db 26 in
    let store = Db.store db in
    let texts = Store.text_nodes store in
    let mgr = Txn.manager db in
    let n_txns = 2 + Prng.int rng 5 in
    let txns =
      Array.init n_txns (fun _ ->
          let t = Txn.begin_ mgr in
          for _ = 0 to Prng.int rng 3 do
            (* a small victim pool so overlap is common *)
            write t texts.(Prng.int rng 5) (string_of_int (Prng.int rng 100))
          done;
          t)
    in
    let committed = ref 0 and aborted = ref 0 and conflicts = ref 0 in
    Array.iter
      (fun t ->
        if Prng.int rng 4 = 0 then begin
          Txn.abort t;
          incr aborted
        end
        else
          match Txn.commit t with
          | Ok () -> incr committed
          | Error _ ->
              incr aborted;
              incr conflicts)
      txns;
    let st = Txn.stats mgr in
    Alcotest.(check int) "committed" !committed st.Txn.committed;
    Alcotest.(check int) "aborted" !aborted st.Txn.aborted;
    Alcotest.(check int) "conflicts" !conflicts st.Txn.conflicts;
    Alcotest.(check int) "every transaction accounted for" n_txns
      (st.Txn.committed + st.Txn.aborted);
    (* the finished transactions must refuse further writes *)
    Array.iter
      (fun t ->
        match Txn.update_text t texts.(0) "late" with
        | Error `Finished -> ()
        | _ -> Alcotest.fail "write after commit/abort should report `Finished")
      txns;
    Alcotest.(check (result unit string)) "indices validate" (Ok ())
      (Db.validate db)
  done

let () =
  Alcotest.run "txn"
    [
      ( "txn",
        [
          Alcotest.test_case "basic commit" `Quick test_basic_commit;
          Alcotest.test_case "write-write conflict" `Quick test_write_write_conflict;
          Alcotest.test_case "shared ancestors ok" `Quick test_no_conflict_on_shared_ancestors;
          Alcotest.test_case "commutativity" `Quick test_commutativity;
          Alcotest.test_case "random interleavings" `Quick test_random_interleavings;
          Alcotest.test_case "abort and lifecycle" `Quick test_abort_and_finished_txns;
          Alcotest.test_case "structural delete conflicts" `Quick
            test_structural_delete_conflicts;
          Alcotest.test_case "stats reconcile" `Quick test_stats_reconcile;
        ] );
    ]

(* Parallel index construction: the chunked domain-parallel build must
   be bit-identical to the serial Figure 7 pass (and hence to the
   reference recursive definition) for any document and any job count —
   the monoid-reduction argument behind Indexer.create_multi, pinned
   down by a qcheck property over generated documents. Also covers the
   Pool primitive itself, Db.Config-driven parallel builds followed by
   updates, and the deprecated legacy wrappers. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Indexer = Xvi_core.Indexer
module Hash = Xvi_core.Hash
module Db = Xvi_core.Db
module Pool = Xvi_util.Pool
module Prng = Xvi_util.Prng

let double_sct = (Xvi_core.Lexical_types.double ()).Xvi_core.Lexical_types.sct

let datetime_sct =
  (Xvi_core.Lexical_types.datetime ()).Xvi_core.Lexical_types.sct

(* --- document generation: plenty of nasty shapes --- *)

(* Mixed content, empty elements, attribute-only elements, comments,
   deep chains; text pulled from lexical fragments of xs:double so the
   SCT machines see viable and rejected content alike. *)
let random_doc rng =
  let buf = Buffer.create 512 in
  let texts =
    [| "alpha"; "42"; "3.14"; "."; "E+9"; "-"; "x y"; "0"; "left right";
       "2004-07-15T08:30:00Z"; "" |]
  in
  let rec element depth =
    let name = Printf.sprintf "n%d" (Prng.int rng 6) in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    if Prng.int rng 4 = 0 then
      Buffer.add_string buf
        (Printf.sprintf " a%d=\"%s\"" (Prng.int rng 3)
           texts.(Prng.int rng (Array.length texts - 2)));
    if Prng.int rng 6 = 0 then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      let children = Prng.int rng (if depth > 5 then 2 else 4) in
      for _ = 1 to children do
        match Prng.int rng 5 with
        | 0 | 1 ->
            Buffer.add_string buf
              (Xvi_xml.Serializer.escape_text
                 texts.(Prng.int rng (Array.length texts)));
            Buffer.add_string buf "<!--sep-->"
        | _ -> element (depth + 1)
      done;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end
  in
  element 0;
  Buffer.contents buf

let store_of_seed seed =
  (* every fifth document is a small XMark instance, the rest are
     adversarial random shapes *)
  if seed mod 5 = 0 then
    Parser.parse_exn (Xvi_workload.Xmark.generate ~seed ~factor:0.002 ())
  else Parser.parse_exn ~strip_ws:false (random_doc (Prng.create seed))

(* --- the bit-identity property --- *)

(* Build all three machines in one parallel pass and compare every node
   field against the serial reference, bitwise (fields are ints in every
   machine, so [=] is bit equality). *)
let check_parallel_build store jobs =
  Pool.with_pool ~jobs (fun pool ->
      let sct_d_ops = Indexer.sct_ops double_sct in
      let sct_t_ops = Indexer.sct_ops datetime_sct in
      let hash_fields = Indexer.empty_fields Indexer.hash_ops store in
      let d_fields = Indexer.empty_fields sct_d_ops store in
      let t_fields = Indexer.empty_fields sct_t_ops store in
      Indexer.create_multi ~pool store
        [
          Indexer.Packed (Indexer.hash_ops, hash_fields);
          Indexer.Packed (sct_d_ops, d_fields);
          Indexer.Packed (sct_t_ops, t_fields);
        ];
      let hash_ref = Indexer.create_reference Indexer.hash_ops store in
      let d_ref = Indexer.create_reference sct_d_ops store in
      let t_ref = Indexer.create_reference sct_t_ops store in
      let ok = ref true in
      Store.iter_pre store (fun n ->
          if
            Hash.to_int (Indexer.get hash_fields n)
            <> Hash.to_int (Indexer.get hash_ref n)
            || Indexer.get d_fields n <> Indexer.get d_ref n
            || Indexer.get t_fields n <> Indexer.get t_ref n
          then ok := false);
      !ok)

let qcheck_parallel_identical =
  QCheck.Test.make ~count:60
    ~name:"parallel create_multi bit-identical to reference (jobs 1/2/4/8)"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let store = store_of_seed seed in
      List.for_all (fun jobs -> check_parallel_build store jobs) [ 1; 2; 4; 8 ])

(* --- edge-case documents, checked deterministically --- *)

let test_parallel_edge_docs () =
  List.iter
    (fun doc ->
      let store = Parser.parse_exn ~strip_ws:false doc in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s at %d jobs" doc jobs)
            true
            (check_parallel_build store jobs))
        [ 1; 2; 3; 4; 8; 17 ])
    [
      "<a/>";
      "<a x=\"1\"/>";
      "<a><b/><c/><d/></a>";
      "<a>42</a>";
      "<person><name><first>Arthur</first><family>Dent</family></name>\
       <birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age>\
       <weight><kilos>78</kilos>.<grams>230</grams></weight></person>";
      (* more chunks than texts *)
      "<r><a>1</a><b>2</b></r>";
    ]

(* --- Db-level parallel build: indices + postings, then updates --- *)

let test_db_parallel_build_and_update () =
  let xml = Xvi_workload.Xmark.generate ~seed:77 ~factor:0.01 () in
  let serial = Db.of_xml_exn xml in
  List.iter
    (fun jobs ->
      let config = { Db.Config.default with Db.Config.jobs } in
      let db = Db.of_xml_exn ~config xml in
      let store = Db.store db in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d stored config" jobs)
        jobs
        (Db.config db).Db.Config.jobs;
      (* same lookup answers as the serial database *)
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d string lookup" jobs)
        (Db.lookup_string serial "Creditcard")
        (Db.lookup_string db "Creditcard");
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d double range" jobs)
        (Db.lookup_double serial (Db.Range.between 0.0 100.0))
        (Db.lookup_double db (Db.Range.between 0.0 100.0));
      (match Db.validate db with
      | Ok () -> ()
      | Error e -> Alcotest.failf "jobs=%d validate: %s" jobs e);
      (* the parallel-built database takes incremental updates cleanly *)
      let updates =
        Xvi_workload.Update_workload.random_text_updates ~seed:jobs store
          ~count:50
      in
      Db.update_texts db updates;
      match Db.validate db with
      | Ok () -> ()
      | Error e -> Alcotest.failf "jobs=%d validate after updates: %s" jobs e)
    [ 2; 4 ]

let test_range_constructors () =
  let xml = "<r><a>1</a><b>5</b><c>9</c></r>" in
  let db = Db.of_xml_exn xml in
  let count r = List.length (Db.lookup_double db r) in
  (* each value hits a text node and its element parent; <r> and the
     document node concatenate to "159", itself a complete double *)
  Alcotest.(check int) "any" 8 (count Db.Range.any);
  Alcotest.(check int) "between" 2 (count (Db.Range.between 5.0 5.0));
  Alcotest.(check int) "at_least" 6 (count (Db.Range.at_least 5.0));
  Alcotest.(check int) "at_most" 4 (count (Db.Range.at_most 5.0));
  Alcotest.(check (option (float 0.0))) "lo" (Some 5.0)
    (Db.Range.lo (Db.Range.at_least 5.0));
  Alcotest.(check (option (float 0.0))) "hi" None
    (Db.Range.hi (Db.Range.at_least 5.0))

(* --- the pool primitive --- *)

let test_pool_map_deterministic () =
  Pool.with_pool ~jobs:4 (fun pool ->
      for n = 0 to 40 do
        let got = Pool.map pool (fun i -> i * i) n in
        Alcotest.(check (array int))
          (Printf.sprintf "map %d" n)
          (Array.init n (fun i -> i * i))
          got
      done;
      (* reusable across calls *)
      Alcotest.(check (array int)) "reuse" [| 0; 1; 2 |]
        (Pool.map pool (fun i -> i) 3))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "task failure re-raised" (Failure "task 5")
        (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i = 5 then failwith "task 5" else i)
               8));
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "pool still works" [| 0; 1 |]
        (Pool.map pool (fun i -> i) 2))

let test_pool_slices () =
  List.iter
    (fun (n, k) ->
      let s = Pool.slices n k in
      Alcotest.(check int) "slice count" (max k 1) (Array.length s);
      let covered = ref 0 in
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "ordered" true (lo <= hi);
          if i = 0 then Alcotest.(check int) "starts at 0" 0 lo
          else Alcotest.(check int) "contiguous" (snd s.(i - 1)) lo;
          covered := !covered + (hi - lo))
        s;
      Alcotest.(check int) (Printf.sprintf "covers [0,%d)" n) n !covered)
    [ (0, 1); (0, 4); (1, 4); (10, 3); (100, 7); (5, 5); (3, 8) ]

(* --- the Config record drives construction like the defaults do --- *)

let test_config_construction () =
  let xml = "<r><a>1.5</a><b>hello</b><c at=\"7\">x</c></r>" in
  let db = Db.of_xml_exn xml in
  let custom =
    Db.of_xml_exn
      ~config:{ Db.Config.default with Db.Config.substring = true }
      xml
  in
  Alcotest.(check (list int))
    "custom-config lookup_double = default"
    (Db.lookup_double db (Db.Range.between 1.0 2.0))
    (Db.lookup_double custom (Db.Range.between 1.0 2.0));
  Alcotest.(check (list int))
    "custom-config lookup_typed = default"
    (Db.lookup_typed db "xs:double" Db.Range.any)
    (Db.lookup_typed custom "xs:double" Db.Range.any);
  Alcotest.(check bool) "substring flag built the index" true
    (Db.substring_index custom <> None);
  match Db.validate custom with
  | Ok () -> ()
  | Error e -> Alcotest.failf "custom-config validate: %s" e

(* --- snapshot reload with a config rebuild --- *)

let test_snapshot_load_with_config () =
  let xml = Xvi_workload.Xmark.generate ~seed:5 ~factor:0.005 () in
  let db = Db.of_xml_exn xml in
  let path = Filename.temp_file "xvi_parallel" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xvi_core.Snapshot.save db path;
      let config =
        { Db.Config.default with Db.Config.substring = true; jobs = 4 }
      in
      let db2 = Xvi_core.Snapshot.load_exn ~config path in
      Alcotest.(check bool) "substring index built on reload" true
        (Db.substring_index db2 <> None);
      Alcotest.(check (list int))
        "reloaded answers agree"
        (Db.lookup_string db "Creditcard")
        (Db.lookup_string db2 "Creditcard");
      match Db.validate db2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reloaded validate: %s" e)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map is deterministic" `Quick
            test_pool_map_deterministic;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "slices partition" `Quick test_pool_slices;
        ] );
      ( "bit-identity",
        [
          QCheck_alcotest.to_alcotest qcheck_parallel_identical;
          Alcotest.test_case "edge documents" `Quick test_parallel_edge_docs;
        ] );
      ( "db",
        [
          Alcotest.test_case "parallel build + updates" `Quick
            test_db_parallel_build_and_update;
          Alcotest.test_case "Range constructors" `Quick test_range_constructors;
          Alcotest.test_case "config construction" `Quick
            test_config_construction;
          Alcotest.test_case "snapshot reload with config" `Quick
            test_snapshot_load_with_config;
        ] );
    ]

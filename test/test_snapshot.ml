(* Snapshot persistence tests: save/load round-trips preserve every
   index, reloaded databases accept updates, and corrupt or foreign
   files are rejected cleanly. *)

module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Store = Xvi_xml.Store

let with_temp f =
  let path = Filename.temp_file "xvi_test" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_roundtrip () =
  with_temp (fun path ->
      let xml = Xvi_workload.Xmark.generate ~seed:31 ~factor:0.01 () in
      let db =
        Db.of_xml_exn
          ~config:{ Db.Config.default with Db.Config.substring = true }
          xml
      in
      Snapshot.save db path;
      Alcotest.(check bool) "is_snapshot" true (Snapshot.is_snapshot path);
      let db2 = Snapshot.load_exn path in
      (match Db.validate db2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reloaded validate: %s" e);
      (* queries agree between original and reloaded *)
      List.iter
        (fun probe ->
          Alcotest.(check (list int))
            (Printf.sprintf "lookup %S" probe)
            (Db.lookup_string db probe) (Db.lookup_string db2 probe))
        [ "Creditcard"; "male"; "Arthur Dent" ];
      Alcotest.(check (list int)) "range agrees"
        (Db.lookup_double db (Db.Range.between 10.0 20.0))
        (Db.lookup_double db2 (Db.Range.between 10.0 20.0));
      Alcotest.(check (list int)) "contains agrees"
        (Db.lookup_contains db "ship")
        (Db.lookup_contains db2 "ship"))

let test_reloaded_updates () =
  with_temp (fun path ->
      let db = Db.of_xml_exn "<a><b>old value</b><c>7.5</c></a>" in
      Snapshot.save db path;
      let db2 = Snapshot.load_exn path in
      let store = Store.text_nodes (Db.store db2) in
      Db.update_text db2 store.(0) "new value";
      Db.update_text db2 store.(1) "8.5";
      (match Db.validate db2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "validate: %s" e);
      (* the text node and its <b> parent both have that string value *)
      Alcotest.(check int) "string moved" 2
        (List.length (Db.lookup_string db2 "new value"));
      Alcotest.(check int) "double moved" 2
        (List.length (Db.lookup_double db2 (Db.Range.between 8.5 8.5))))

let test_rejects_garbage () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "<xml>not a snapshot</xml>";
      close_out oc;
      Alcotest.(check bool) "not a snapshot" false (Snapshot.is_snapshot path);
      match Snapshot.load path with
      | Error Snapshot.Not_a_snapshot -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
      | Ok _ -> Alcotest.fail "garbage loaded")

let test_rejects_fingerprint_mismatch () =
  with_temp (fun path ->
      let db = Db.of_xml_exn "<a>x</a>" in
      Snapshot.save db path;
      (* flip a byte inside the fingerprint line *)
      let content =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let mutated = Bytes.of_string content in
      let fp_pos = String.length "XVI-SNAPSHOT-3\n" in
      Bytes.set mutated fp_pos
        (if Bytes.get mutated fp_pos = '0' then '1' else '0');
      let oc = open_out_bin path in
      output_bytes oc mutated;
      close_out oc;
      match Snapshot.load path with
      | Error Snapshot.Binary_mismatch -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
      | Ok _ -> Alcotest.fail "mismatched snapshot loaded")

let test_missing_file () =
  match Snapshot.load "/nonexistent/path/db.snap" with
  | Error (Snapshot.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "loaded from nowhere"

let () =
  Alcotest.run "snapshot"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "reloaded updates" `Quick test_reloaded_updates;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "rejects foreign binary" `Quick test_rejects_fingerprint_mismatch;
          Alcotest.test_case "missing file" `Quick test_missing_file;
        ] );
    ]

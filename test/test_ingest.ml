(* Streaming ingest tests: SAX event stream vs. the whole-document
   parser (chunk invariance, exact error positions, serializer
   round-trips), the bounded-memory builder's bit-identity with
   [Db.of_store], the B+tree bulk-load streaming entry points, and a
   quick crash-point sweep over the durable ingest path. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Sax = Xvi_xml.Sax
module Serializer = Xvi_xml.Serializer
module Db = Xvi_core.Db
module Ingest = Xvi_ingest.Ingest
module BT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Int_key)

(* a source that yields the document in fixed-size chunks *)
let chunked n doc =
  let pos = ref 0 in
  fun () ->
    if !pos >= String.length doc then None
    else begin
      let len = min n (String.length doc - !pos) in
      let b = Bytes.of_string (String.sub doc !pos len) in
      pos := !pos + len;
      Some b
    end

let events_of ?strip_ws source =
  let t = Sax.make ?strip_ws source in
  let rec go acc =
    match Sax.next t with
    | Ok (Some ep) -> go (ep :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go []

let events_exn ?strip_ws source =
  match events_of ?strip_ws source with
  | Ok evs -> evs
  | Error e -> Alcotest.failf "sax error: %s" (Parser.error_to_string e)

let show_event : Sax.event -> string = function
  | Sax.Start_element { name; attrs } ->
      Printf.sprintf "<%s %s>" name
        (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))
  | Sax.End_element n -> Printf.sprintf "</%s>" n
  | Sax.Text s -> Printf.sprintf "text(%S)" s
  | Sax.Cdata s -> Printf.sprintf "cdata(%S)" s
  | Sax.Comment s -> Printf.sprintf "comment(%S)" s
  | Sax.Pi { target; body } -> Printf.sprintf "pi(%s,%S)" target body

let show_ev_pos (e, (p : Sax.position)) =
  Printf.sprintf "%s@%d:%d+%d" (show_event e) p.Sax.line p.Sax.col p.Sax.offset

let tricky_doc =
  "<?xml version=\"1.0\"?>\n\
   <!-- prolog -->\n\
   <?marker here?>\n\
   <root a=\"1\" b='two &amp; three'>\n\
  \  <item>plain &lt;text&gt;</item>\n\
   mixed &#65;&#x42;\n\
  \  <empty/>\n\
  \  <![CDATA[raw <stuff> &amp; unparsed]]>\n\
  \  <deep><deeper>x</deeper></deep>\n\
   </root>\n\
   <!-- trailing -->"

(* The same bytes through any chunking must produce the same events at
   the same positions — chunk boundaries are invisible. *)
let test_chunk_invariance () =
  let whole = events_exn (Sax.of_string tricky_doc) in
  List.iter
    (fun n ->
      let evs = events_exn (chunked n tricky_doc) in
      Alcotest.(check (list string))
        (Printf.sprintf "chunk size %d" n)
        (List.map show_ev_pos whole) (List.map show_ev_pos evs))
    [ 1; 2; 3; 7; 64; 100000 ]

(* Every event's reported offset must point at the byte its token
   starts on, and line/col must agree with a naive scan to that
   offset. *)
let test_positions_consistent () =
  List.iter
    (fun (e, (p : Sax.position)) ->
      let line = ref 1 and col = ref 1 in
      String.iteri
        (fun i c ->
          if i < p.Sax.offset then
            if c = '\n' then begin
              incr line;
              col := 1
            end
            else incr col)
        tricky_doc;
      let what = show_event e in
      Alcotest.(check int) (what ^ " line") !line p.Sax.line;
      Alcotest.(check int) (what ^ " col") !col p.Sax.col;
      (match e with
      | Sax.Start_element _ | Sax.End_element _ | Sax.Comment _ | Sax.Pi _
      | Sax.Cdata _ ->
          Alcotest.(check char) (what ^ " starts on '<'") '<'
            tricky_doc.[p.Sax.offset]
      | Sax.Text _ -> ()))
    (events_exn (Sax.of_string tricky_doc))

(* Exact failure positions, and [Parser]/[Sax] must agree bit for bit
   on them — same line, same column, same absolute byte offset, same
   message — regardless of how the bytes were chunked. *)
let test_error_positions () =
  let sax_error n doc =
    match events_of (chunked n doc) with
    | Ok _ -> Alcotest.failf "sax accepted %S" doc
    | Error e -> e
  in
  let cases =
    [
      ("<a>\n  <b>x</c>\n</a>", 2, 10, 13, "mismatched end tag </c> for <b>");
      ("<a><b>hi</b>", 1, 13, 12, "unexpected end of input");
      ("<a>&unknown;</a>", 1, 13, 12, "unknown entity &unknown;");
      ("<a x=1></a>", 1, 7, 6, "expected quoted attribute value");
      ("no markup", 1, 1, 0, "expected root element");
      ("<a>ok</a>trailing<b/>", 1, 10, 9, "content after the root element");
    ]
  in
  List.iter
    (fun (doc, line, col, offset, message) ->
      let pe =
        match Parser.parse doc with
        | Ok _ -> Alcotest.failf "parser accepted %S" doc
        | Error e -> e
      in
      Alcotest.(check int) (doc ^ " parser line") line pe.Parser.line;
      Alcotest.(check int) (doc ^ " parser col") col pe.Parser.col;
      Alcotest.(check int) (doc ^ " parser offset") offset pe.Parser.offset;
      Alcotest.(check string) (doc ^ " parser message") message pe.Parser.message;
      List.iter
        (fun n ->
          let se = sax_error n doc in
          Alcotest.(check int) (doc ^ " sax line") pe.Parser.line se.Parser.line;
          Alcotest.(check int) (doc ^ " sax col") pe.Parser.col se.Parser.col;
          Alcotest.(check int)
            (doc ^ " sax offset")
            pe.Parser.offset se.Parser.offset;
          Alcotest.(check string)
            (doc ^ " sax message")
            pe.Parser.message se.Parser.message)
        [ 1; 5; 100000 ])
    cases

let db_digest db = Digest.string (Marshal.to_string db [ Marshal.Closures ])

let whole_db ?(config = Db.Config.default) doc =
  match Parser.parse doc with
  | Error e -> Alcotest.failf "parse: %s" (Parser.error_to_string e)
  | Ok store -> Db.of_store ~config:{ config with Db.Config.jobs = 1 } store

let streamed_db ?config ?batch_rows source =
  match Ingest.load ?config ?batch_rows source with
  | Ok db -> db
  | Error e -> Alcotest.failf "ingest: %s" (Parser.error_to_string e)

let test_streamed_identity_fixed () =
  let oracle = db_digest (whole_db tricky_doc) in
  List.iter
    (fun (chunk, batch_rows) ->
      let db = streamed_db ~batch_rows (chunked chunk tricky_doc) in
      Alcotest.(check string)
        (Printf.sprintf "chunk=%d batch_rows=%d" chunk batch_rows)
        oracle (db_digest db))
    [ (1, 1); (1, 100000); (7, 3); (4096, 8); (100000, 100000) ]

(* the qcheck property: any generated document, any chunking, any batch
   budget — the streamed build is marshal-bit-identical to the serial
   whole-document build *)
let streamed_identity_prop =
  QCheck.Test.make ~count:25 ~name:"streamed ingest = whole-document build"
    QCheck.(triple small_int (int_range 1 64) (int_range 1 2000))
    (fun (seed, chunk, batch_rows) ->
      let doc = Xvi_check.Gen.document (Xvi_util.Prng.create seed) in
      let oracle = db_digest (whole_db doc) in
      let db = streamed_db ~batch_rows (chunked chunk doc) in
      String.equal oracle (db_digest db))

(* serializer round-trip: canonical bytes -> 1-byte-chunked SAX ingest
   -> serializer must reproduce the canonical bytes exactly *)
let serializer_roundtrip_prop =
  QCheck.Test.make ~count:25 ~name:"sax ingest round-trips through serializer"
    QCheck.small_int
    (fun seed ->
      let doc = Xvi_check.Gen.document (Xvi_util.Prng.create seed) in
      let canonical =
        Serializer.document_to_string (Parser.parse_exn doc)
      in
      let db = streamed_db (chunked 1 canonical) in
      String.equal canonical
        (Serializer.document_to_string (Db.store db)))

let test_builder_manual_batches () =
  let t = Sax.make (Sax.of_string tricky_doc) in
  let b = Ingest.Builder.create Db.Config.default in
  let rec drive () =
    match Sax.next t with
    | Error e -> Alcotest.failf "sax: %s" (Parser.error_to_string e)
    | Ok None -> ()
    | Ok (Some (ev, _)) ->
        Ingest.Builder.feed b ev;
        (* cut a batch after every single event — the most hostile
           batching possible *)
        Ingest.Builder.flush_batch b;
        drive ()
  in
  drive ();
  Alcotest.(check bool) "batches counted" true (Ingest.Builder.batches b > 0);
  Alcotest.(check int) "nothing pending" 0 (Ingest.Builder.pending_rows b);
  let db = Ingest.Builder.finish b in
  Alcotest.(check string) "bit-identical"
    (db_digest (whole_db tricky_doc))
    (db_digest db)

(* --- B+tree streaming bulk load --- *)

let test_btree_of_sorted_seq () =
  let n = 1000 in
  let arr = Array.init n (fun i -> ((i * 3) + 1, i * i)) in
  let reference = BT.of_sorted_array ~order:8 arr in
  let pos = ref 0 in
  let gen () =
    let p = arr.(!pos) in
    incr pos;
    p
  in
  let t = BT.of_sorted_seq ~order:8 ~len:n gen in
  (match BT.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e);
  Alcotest.(check int) "length" n (BT.length t);
  Alcotest.(check (list (pair int int)))
    "same bindings" (BT.range reference) (BT.range t);
  (* digest-level identity with the array loader *)
  Alcotest.(check string) "identical tree"
    (Digest.string (Marshal.to_string reference []))
    (Digest.string (Marshal.to_string t []));
  (* ascent violations must be caught *)
  let bad = [| (5, 0); (5, 1) |] in
  let pos = ref 0 in
  let gen () =
    let p = bad.(!pos) in
    incr pos;
    p
  in
  Alcotest.check_raises "duplicate key rejected"
    (Invalid_argument "Btree.of_sorted_seq: keys not strictly ascending")
    (fun () -> ignore (BT.of_sorted_seq ~len:2 gen))

let test_btree_iter_raw () =
  let t = BT.create ~order:4 () in
  for i = 0 to 99 do
    BT.insert t (i * 2) i
  done;
  let collect ?lo ?hi () =
    let out = ref [] in
    BT.iter_raw ?lo ?hi
      (fun keys off len ->
        for i = off to off + len - 1 do
          out := keys.(i) :: !out
        done)
      t;
    List.rev !out
  in
  let expect ?lo ?hi () = List.map fst (BT.range ?lo ?hi t) in
  Alcotest.(check (list int)) "full" (expect ()) (collect ());
  Alcotest.(check (list int)) "mid"
    (expect ~lo:10 ~hi:30 ())
    (collect ~lo:10 ~hi:30 ());
  Alcotest.(check (list int)) "between keys"
    (expect ~lo:9 ~hi:31 ())
    (collect ~lo:9 ~hi:31 ());
  Alcotest.(check (list int)) "open lo" (expect ~hi:8 ()) (collect ~hi:8 ());
  Alcotest.(check (list int)) "open hi"
    (expect ~lo:190 ())
    (collect ~lo:190 ())

(* --- durable ingest: quick crash-point sweep --- *)

let test_ingest_sweep_quick () =
  let doc = Xvi_check.Gen.document (Xvi_util.Prng.create 7) in
  match
    Xvi_check.Fault.ingest_sweep ~crash_points:20 ~ingest_flips:8
      ~batch_rows:8 doc
  with
  | Ok r ->
      Alcotest.(check bool) "several batches" true (r.Xvi_check.Fault.ingest_batches >= 2);
      Alcotest.(check bool) "crash points" true
        (r.Xvi_check.Fault.ingest_crash_points > 0)
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "ingest"
    [
      ( "sax",
        [
          Alcotest.test_case "chunk invariance" `Quick test_chunk_invariance;
          Alcotest.test_case "positions consistent" `Quick
            test_positions_consistent;
          Alcotest.test_case "error positions exact" `Quick
            test_error_positions;
        ] );
      ( "builder",
        [
          Alcotest.test_case "fixed-doc identity" `Quick
            test_streamed_identity_fixed;
          Alcotest.test_case "hostile manual batches" `Quick
            test_builder_manual_batches;
          QCheck_alcotest.to_alcotest streamed_identity_prop;
          QCheck_alcotest.to_alcotest serializer_roundtrip_prop;
        ] );
      ( "btree",
        [
          Alcotest.test_case "of_sorted_seq" `Quick test_btree_of_sorted_seq;
          Alcotest.test_case "iter_raw" `Quick test_btree_iter_raw;
        ] );
      ( "durable",
        [
          Alcotest.test_case "crash sweep (quick)" `Quick
            test_ingest_sweep_quick;
        ] );
    ]

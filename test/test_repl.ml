(* Replication tests: an in-process follower over a real leader engine
   (bootstrap, catch-up, staleness, read-only replica, promote), the
   same topology over actual Unix sockets with the repl verbs and
   client-driven failover, rejoin truncation of a divergent tail, and
   a quick run of the replication fault sweep. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Wal = Xvi_wal.Wal
module Engine = Xvi_serve.Engine
module Server = Xvi_serve.Server
module Client = Xvi_serve.Client
module Transport = Xvi_repl.Transport
module Leader = Xvi_repl.Leader
module Follower = Xvi_repl.Follower
module Route = Xvi_repl.Route
module Fault = Xvi_check.Fault

let small_xml = "<doc><a>alpha</a><b>beta</b><c n=\"7\">gamma</c></doc>"

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_root f =
  let root = Filename.temp_file "xvi-repl" "" in
  Sys.remove root;
  Unix.mkdir root 0o700;
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Engine.error_to_string e)

let cli what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let first_text db =
  let texts = Store.text_nodes (Db.store db) in
  if Array.length texts = 0 then Alcotest.fail "no text nodes";
  texts.(0)

let drain what f =
  let rec go n =
    if n > 10_000 then Alcotest.failf "%s: follower did not converge" what
    else
      match Follower.catch_up f with
      | Ok `Caught_up -> ()
      | Ok (`Applied _) | Ok `Resynced -> go (n + 1)
      | Error m -> Alcotest.failf "%s: catch-up: %s" what m
  in
  go 0

(* --- in-process: follower over Transport.of_engine ----------------- *)

let test_follower_catch_up_and_promote () =
  with_root (fun root ->
      let ldir = Filename.concat root "leader" in
      let fdir = Filename.concat root "follower" in
      let leader =
        ok_exn "init leader"
          (Engine.init ~sync_mode:Wal.Always ~dir:ldir (Db.of_xml_exn small_xml))
      in
      Fun.protect
        ~finally:(fun () -> Engine.close leader)
        (fun () ->
          let t0 = first_text (Engine.snapshot leader) in
          ignore
            (ok_exn "commit 1" (Engine.update_texts leader [ (t0, "one") ])
              : int);
          let f =
            cli "follower create"
              (Follower.create ~sync_mode:Wal.Always
                 ~transport:(Transport.of_engine leader) ~dir:fdir ())
          in
          drain "bootstrap" f;
          let replica = Follower.engine f in
          (* the replica serves the leader's committed state, read-only *)
          Alcotest.(check bool) "replica is read-only" true
            (Engine.read_only replica);
          if not (List.mem t0 (Db.lookup_string (Engine.snapshot replica) "one"))
          then Alcotest.fail "bootstrapped commit not readable on replica";
          (match Engine.update_texts replica [ (t0, "nope" ) ] with
          | Error Engine.Read_only -> ()
          | Error e ->
              Alcotest.failf "wanted Read_only, got %s" (Engine.error_to_string e)
          | Ok _ -> Alcotest.fail "replica accepted a write");
          (* staleness counts the gap, catch-up closes it *)
          ignore
            (ok_exn "commit 2" (Engine.update_texts leader [ (t0, "two") ])
              : int);
          let lag_before = Follower.staleness f in
          drain "second batch" f;
          let lsns_match () =
            Alcotest.(check int) "applied = leader durable"
              (Engine.stats leader).Engine.durable_lsn (Follower.applied_lsn f)
          in
          lsns_match ();
          Alcotest.(check int) "caught up: no staleness" 0 (Follower.staleness f);
          ignore (lag_before : int);
          if
            not
              (List.mem t0
                 (Db.lookup_string (Engine.snapshot (Follower.engine f)) "two"))
          then Alcotest.fail "second commit not applied";
          (* promotion recovers the same directory as a writable engine *)
          let promoted, handlers =
            cli "promote" (Follower.promote f)
          in
          Fun.protect
            ~finally:(fun () ->
              Follower.close f;
              Engine.close promoted)
            (fun () ->
              Alcotest.(check string) "leader handlers" "leader"
                handlers.Server.role;
              Alcotest.(check bool) "promoted is writable" false
                (Engine.read_only promoted);
              ignore
                (ok_exn "write after failover"
                   (Engine.update_texts promoted [ (t0, "failover write") ])
                  : int);
              if
                not
                  (List.mem t0
                     (Db.lookup_string (Engine.snapshot promoted)
                        "failover write"))
              then Alcotest.fail "post-failover write not visible")))

let test_rejoin_truncates_divergent_tail () =
  with_root (fun root ->
      let ldir = Filename.concat root "leader" in
      let fdir = Filename.concat root "follower" in
      let leader =
        ok_exn "init leader"
          (Engine.init ~sync_mode:Wal.Always ~dir:ldir (Db.of_xml_exn small_xml))
      in
      let t0 = first_text (Engine.snapshot leader) in
      ignore (ok_exn "shared" (Engine.update_texts leader [ (t0, "shared") ]) : int);
      (* a synced follower... *)
      let f =
        cli "follower"
          (Follower.create ~sync_mode:Wal.Always
             ~transport:(Transport.of_engine leader) ~dir:fdir ())
      in
      drain "sync" f;
      Follower.close f;
      (* ...then the old leader commits past the follower's position and
         "crashes": the follower is promoted, writes its own history,
         and the deposed leader rejoins — its unreplicated tail must go *)
      ignore
        (ok_exn "divergent" (Engine.update_texts leader [ (t0, "never shipped") ])
          : int);
      Engine.close leader;
      let promoted = ok_exn "promote follower" (Engine.open_ (Engine.Dir fdir)) in
      Fun.protect
        ~finally:(fun () -> Engine.close promoted)
        (fun () ->
          ignore
            (ok_exn "new history"
               (Engine.update_texts promoted [ (t0, "new history") ])
              : int);
          Engine.sync promoted;
          let rejoined =
            cli "rejoin"
              (Follower.create ~sync_mode:Wal.Always
                 ~transport:(Transport.of_engine promoted) ~dir:ldir ())
          in
          Fun.protect
            ~finally:(fun () -> Follower.close rejoined)
            (fun () ->
              drain "rejoin" rejoined;
              Alcotest.(check int) "rejoined at the new leader's lsn"
                (Engine.stats promoted).Engine.durable_lsn
                (Follower.applied_lsn rejoined);
              let db = Engine.snapshot (Follower.engine rejoined) in
              if not (List.mem t0 (Db.lookup_string db "new history")) then
                Alcotest.fail "rejoined node missing the new history";
              if Db.lookup_string db "never shipped" <> [] then
                Alcotest.fail
                  "rejoined node kept its divergent unreplicated commit")))

(* --- over real sockets: serve --follow, stale reads, promote ------- *)

let test_sockets_and_failover () =
  with_root (fun root ->
      let ldir = Filename.concat root "leader" in
      let fdir = Filename.concat root "follower" in
      let lsock = Filename.concat root "l.sock" in
      let fsock = Filename.concat root "f.sock" in
      let leader =
        ok_exn "init leader"
          (Engine.init ~sync_mode:Wal.Always ~dir:ldir (Db.of_xml_exn small_xml))
      in
      let t0 = first_text (Engine.snapshot leader) in
      let lserver =
        match
          Server.create ~repl:(Leader.handlers leader) ~engine:leader
            ~socket:lsock ()
        with
        | Ok s -> s
        | Error m -> Alcotest.failf "leader server: %s" m
      in
      let ldom = Domain.spawn (fun () -> Server.run lserver) in
      let leader_stopped = ref false in
      let stop_leader () =
        if not !leader_stopped then begin
          leader_stopped := true;
          Server.request_stop lserver;
          Domain.join ldom
        end
      in
      Fun.protect
        ~finally:(fun () ->
          stop_leader ();
          Engine.close leader)
        (fun () ->
          (* a follower connected through the leader's socket *)
          let transport = cli "connect" (Transport.connect ~socket:lsock ()) in
          let f =
            cli "follower"
              (Follower.create ~sync_mode:Wal.Always ~transport ~dir:fdir ())
          in
          let fserver =
            match
              Server.create ~repl:(Follower.handlers f)
                ~engine:(Follower.engine f) ~socket:fsock ()
            with
            | Ok s -> s
            | Error m -> Alcotest.failf "follower server: %s" m
          in
          Follower.set_on_engine_change f (Server.set_engine fserver);
          Follower.start f;
          let fdom = Domain.spawn (fun () -> Server.run fserver) in
          Fun.protect
            ~finally:(fun () ->
              Server.request_stop fserver;
              Domain.join fdom;
              (* promoted before we get here: the engine is ours *)
              let final = Server.engine fserver in
              Follower.close f;
              if not (Engine.read_only final) then Engine.close final)
            (fun () ->
              (* write through the leader's socket, read it back —
                 stale-bounded — through the follower's socket *)
              let lc = cli "leader client" (Client.connect ~socket:lsock ()) in
              let fc = cli "follower client" (Client.connect ~socket:fsock ()) in
              Fun.protect
                ~finally:(fun () ->
                  Client.close lc;
                  Client.close fc)
                (fun () ->
                  let info = cli "leader info" (Client.repl_info lc) in
                  Alcotest.(check string) "leader role" "leader"
                    info.Client.role;
                  cli "begin" (Client.begin_ lc);
                  cli "set" (Client.set lc t0 "replicated value");
                  ignore
                    (cli "commit" (Client.commit ~durable:true lc) : int);
                  (* wait until the pull loop has applied the commit *)
                  let deadline = Unix.gettimeofday () +. 10.0 in
                  let rec await () =
                    let fi = cli "follower info" (Client.repl_info fc) in
                    if fi.Client.applied_lsn >= info.Client.durable_lsn + 1
                    then ()
                    else if Unix.gettimeofday () > deadline then
                      Alcotest.fail "follower never applied the commit"
                    else begin
                      Unix.sleepf 0.01;
                      await ()
                    end
                  in
                  await ();
                  let fi = cli "follower info" (Client.repl_info fc) in
                  Alcotest.(check string) "follower role" "follower"
                    fi.Client.role;
                  ignore
                    (cli "repin follower" (Client.pin fc) : int * int * int);
                  if
                    cli "stale-bounded read"
                      (Client.lookup_string fc "replicated value")
                    = []
                  then Alcotest.fail "follower does not serve the commit";
                  (* writes through a follower buffer fine but the
                     commit is refused: the replica is read-only *)
                  cli "begin on follower" (Client.begin_ fc);
                  cli "buffered set" (Client.set fc t0 "nope");
                  (match Client.commit fc with
                  | Error _ -> ()
                  | Ok _ -> Alcotest.fail "follower committed a write");
                  (* stats gains the replication rows *)
                  let st = cli "follower stats" (Client.stats fc) in
                  if List.assoc_opt "staleness" st = None then
                    Alcotest.fail "follower stats missing staleness";
                  (* leader dies; client-driven failover over the wire *)
                  stop_leader ();
                  cli "promote over the wire" (Client.promote fc);
                  let pi = cli "promoted info" (Client.repl_info fc) in
                  Alcotest.(check string) "promoted role" "leader"
                    pi.Client.role;
                  (* new connections write through the promoted node *)
                  let wc =
                    cli "post-failover client" (Client.connect ~socket:fsock ())
                  in
                  Fun.protect
                    ~finally:(fun () -> Client.close wc)
                    (fun () ->
                      cli "begin post-failover" (Client.begin_ wc);
                      cli "set post-failover"
                        (Client.set wc t0 "written after failover");
                      ignore
                        (cli "commit post-failover" (Client.commit wc) : int);
                      if
                        cli "read back"
                          (Client.lookup_string wc "written after failover")
                        = []
                      then Alcotest.fail "post-failover write not served")))))

(* --- read routing --------------------------------------------------- *)

let test_route_prefers_followers () =
  with_root (fun root ->
      let ldir = Filename.concat root "leader" in
      let fdir = Filename.concat root "follower" in
      let lsock = Filename.concat root "l.sock" in
      let fsock = Filename.concat root "f.sock" in
      let leader =
        ok_exn "init leader"
          (Engine.init ~sync_mode:Wal.Always ~dir:ldir (Db.of_xml_exn small_xml))
      in
      let t0 = first_text (Engine.snapshot leader) in
      ignore (ok_exn "seed" (Engine.update_texts leader [ (t0, "routed") ]) : int);
      let lserver =
        match
          Server.create ~repl:(Leader.handlers leader) ~engine:leader
            ~socket:lsock ()
        with
        | Ok s -> s
        | Error m -> Alcotest.failf "leader server: %s" m
      in
      let ldom = Domain.spawn (fun () -> Server.run lserver) in
      Fun.protect
        ~finally:(fun () ->
          Server.request_stop lserver;
          Domain.join ldom;
          Engine.close leader)
        (fun () ->
          let transport = cli "connect" (Transport.connect ~socket:lsock ()) in
          let f =
            cli "follower"
              (Follower.create ~sync_mode:Wal.Always ~transport ~dir:fdir ())
          in
          drain "sync" f;
          let fserver =
            match
              Server.create ~repl:(Follower.handlers f)
                ~engine:(Follower.engine f) ~socket:fsock ()
            with
            | Ok s -> s
            | Error m -> Alcotest.failf "follower server: %s" m
          in
          let fdom = Domain.spawn (fun () -> Server.run fserver) in
          Fun.protect
            ~finally:(fun () ->
              Server.request_stop fserver;
              Domain.join fdom;
              Follower.close f)
            (fun () ->
              let lc = cli "leader client" (Client.connect ~socket:lsock ()) in
              let fc = cli "follower client" (Client.connect ~socket:fsock ()) in
              Fun.protect
                ~finally:(fun () ->
                  Client.close lc;
                  Client.close fc)
                (fun () ->
                  let route = Route.create ~leader:lc ~followers:[ fc ] () in
                  (* reads land on the follower (round robin starts
                     there); writes go to the leader *)
                  let hits =
                    cli "routed read"
                      (Route.read route (fun c -> Client.lookup_string c "routed"))
                  in
                  if hits = [] then Alcotest.fail "routed read missed";
                  cli "routed write begin" (Route.write route Client.begin_);
                  cli "routed write abort" (Route.write route Client.abort);
                  (* an impossible staleness bound falls back to the
                     leader rather than failing *)
                  let again =
                    cli "bounded read"
                      (Route.read ~max_staleness:0 route (fun c ->
                           Client.lookup_string c "routed"))
                  in
                  if again = [] then Alcotest.fail "bounded read missed"))))

(* --- the replication fault sweep (quick caps) ----------------------- *)

let test_repl_sweep_quick () =
  let db = Db.of_xml_exn small_xml in
  let texts = Store.text_nodes (Db.store db) in
  let t i = texts.(i) in
  let batches =
    [
      [ (t 0, "round1-a") ];
      [ (t 1, "round1-b"); (t 2, "round1-c") ];
      [ (t 0, "round2-a") ];
      [ (t 1, "round2-b") ];
    ]
  in
  match
    Fault.repl_sweep ~cut_points:30 ~stream_flips:60 ~follower_crashes:20
      ~failovers:4 db batches
  with
  | Ok r ->
      (* 4 batches plus the sweep's probe insert and delete *)
      Alcotest.(check int) "commits" 6 r.Fault.repl_commits;
      if r.Fault.repl_cut_points < 5 then
        Alcotest.failf "suspiciously few cuts: %d" r.Fault.repl_cut_points;
      if r.Fault.stream_flips < 10 then
        Alcotest.failf "suspiciously few flips: %d" r.Fault.stream_flips;
      if r.Fault.follower_crashes < 5 then
        Alcotest.failf "suspiciously few follower crashes: %d"
          r.Fault.follower_crashes;
      if r.Fault.repl_failovers < 2 then
        Alcotest.failf "suspiciously few failovers: %d" r.Fault.repl_failovers
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "repl"
    [
      ( "follower",
        [
          Alcotest.test_case "bootstrap, catch up, promote" `Quick
            test_follower_catch_up_and_promote;
          Alcotest.test_case "rejoin truncates divergent tail" `Quick
            test_rejoin_truncates_divergent_tail;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "replicate and fail over the wire" `Quick
            test_sockets_and_failover;
          Alcotest.test_case "reads route to followers" `Quick
            test_route_prefers_followers;
        ] );
      ( "fault sweep",
        [ Alcotest.test_case "quick replication sweep" `Quick test_repl_sweep_quick ] );
    ]

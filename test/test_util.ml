(* Unit and property tests for the xvi_util substrate. *)

module Prng = Xvi_util.Prng
module Vec = Xvi_util.Vec
module Table = Xvi_util.Table

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_bounds () =
  let rng = Prng.create 99 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1_000 do
    let v = Prng.in_range rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_prng_uniformish () =
  let rng = Prng.create 7 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d has %d, expected about %d" i c expected)
    counts

let test_sample_distinct () =
  let rng = Prng.create 3 in
  (* sparse and dense paths *)
  List.iter
    (fun (k, n) ->
      let s = Prng.sample_distinct rng k n in
      Alcotest.(check int) "length" k (Array.length s);
      let set = Hashtbl.create k in
      Array.iter
        (fun v ->
          Alcotest.(check bool) "in range" true (v >= 0 && v < n);
          Alcotest.(check bool) "distinct" false (Hashtbl.mem set v);
          Hashtbl.replace set v ())
        s)
    [ (10, 1000); (900, 1000); (0, 5); (5, 5) ]

let test_choose_weighted () =
  let rng = Prng.create 11 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let v = Prng.choose_weighted rng [| (1, "a"); (2, "b"); (7, "c") |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "c most frequent" true (get "c" > get "b" && get "b" > get "a");
  Alcotest.(check bool) "roughly 70%" true (abs (get "c" - 21_000) < 2_000)

let test_vec_int_basics () =
  let v = Vec.Int.create () in
  for i = 0 to 999 do
    Vec.Int.push v (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Vec.Int.length v);
  Alcotest.(check int) "get" 500 (Vec.Int.get v 250);
  Vec.Int.set v 250 (-1);
  Alcotest.(check int) "set" (-1) (Vec.Int.get v 250);
  Alcotest.(check int) "pop" 1998 (Vec.Int.pop v);
  Alcotest.(check int) "popped length" 999 (Vec.Int.length v);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.Int.get: index 999 out of [0,999)") (fun () ->
      ignore (Vec.Int.get v 999))

let test_vec_int_fold_iter () =
  let v = Vec.Int.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold" 10 (Vec.Int.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.Int.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int)))
    "iteri" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (List.rev !acc);
  Alcotest.(check bool) "to_array" true (Vec.Int.to_array v = [| 1; 2; 3; 4 |])

let test_vec_poly () =
  let v = Vec.Poly.create ~dummy:"" () in
  for i = 0 to 99 do
    Vec.Poly.push v (string_of_int i)
  done;
  Alcotest.(check string) "get" "42" (Vec.Poly.get v 42);
  Vec.Poly.set v 42 "changed";
  Alcotest.(check string) "set" "changed" (Vec.Poly.get v 42);
  Alcotest.(check int) "length" 100 (Vec.Poly.length v)

(* --- Bigvec: chunked off-heap vectors with COW snapshots --- *)

module Bigvec = Xvi_util.Bigvec

let marshal_digest (v : Bigvec.Int.t) =
  Digest.to_hex (Digest.string (Marshal.to_string v []))

let test_bigvec_basics () =
  (* chunk = 16 elements, so 1000 pushes cross 62 boundaries *)
  Bigvec.with_chunk_log_for_testing 4 @@ fun () ->
  let v = Bigvec.Int.create () in
  for i = 0 to 999 do
    Bigvec.Int.push v (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Bigvec.Int.length v);
  Alcotest.(check int) "get" 500 (Bigvec.Int.get v 250);
  Bigvec.Int.set v 250 (-1);
  Alcotest.(check int) "set" (-1) (Bigvec.Int.get v 250);
  Alcotest.(check int) "fold" (List.init 1000 (fun i -> i * 2) |> List.fold_left ( + ) 0)
    (Bigvec.Int.fold_left ( + ) 0 v + 501);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Bigvec.get: index 1000 out of [0,1000)") (fun () ->
      ignore (Bigvec.Int.get v 1000));
  let a = Bigvec.Int.to_array v in
  Alcotest.(check int) "to_array length" 1000 (Array.length a);
  Alcotest.(check bool) "of_array round-trip" true
    (Bigvec.Int.to_array (Bigvec.Int.of_array a) = a)

let test_bigvec_cow_snapshot () =
  Bigvec.with_chunk_log_for_testing 4 @@ fun () ->
  let v = Bigvec.Int.create () in
  for i = 0 to 99 do
    Bigvec.Int.push v i
  done;
  let snap = Bigvec.Int.snapshot v in
  let frozen = Bigvec.Int.to_array snap in
  let d0 = marshal_digest snap in
  (* mutate a shared chunk and append past several chunk boundaries *)
  Bigvec.Int.set v 0 (-42);
  Bigvec.Int.set v 99 (-43);
  for i = 100 to 299 do
    Bigvec.Int.push v i
  done;
  Alcotest.(check bool) "snapshot contents untouched" true
    (Bigvec.Int.to_array snap = frozen);
  Alcotest.(check string) "snapshot marshals bit-identically" d0
    (marshal_digest snap);
  Alcotest.(check int) "writer sees its own set" (-42) (Bigvec.Int.get v 0);
  Alcotest.(check int) "writer sees its append" 299 (Bigvec.Int.get v 299);
  (* the snapshot side clones on write too: the parent is unaffected *)
  Bigvec.Int.set snap 1 777;
  Alcotest.(check int) "parent unaffected by snapshot write" 1
    (Bigvec.Int.get v 1);
  (* two snapshots of the same logical state marshal identically *)
  let w = Bigvec.Int.create () in
  for i = 0 to 99 do
    Bigvec.Int.push w i
  done;
  Alcotest.(check string) "equal-history snapshots agree" d0
    (marshal_digest (Bigvec.Int.snapshot w))

let test_bigvec_byte_arena () =
  Bigvec.with_chunk_log_for_testing 4 @@ fun () ->
  let b = Bigvec.Byte.create () in
  let o1 = Bigvec.Byte.append_string b "hello, " in
  let o2 = Bigvec.Byte.append_string b (String.make 40 'x') in
  let o3 = Bigvec.Byte.append_string b "world" in
  Alcotest.(check int) "first offset" 0 o1;
  Alcotest.(check int) "second offset" 7 o2;
  Alcotest.(check int) "third offset" 47 o3;
  Alcotest.(check string) "sub across chunks" (String.make 40 'x')
    (Bigvec.Byte.sub_string b o2 40);
  Alcotest.(check string) "tail" "world" (Bigvec.Byte.sub_string b o3 5);
  let snap = Bigvec.Byte.snapshot b in
  ignore (Bigvec.Byte.append_string b "more");
  Alcotest.(check int) "snapshot length frozen" 52 (Bigvec.Byte.length snap);
  Alcotest.(check string) "snapshot bytes frozen" "world"
    (Bigvec.Byte.sub_string snap o3 5)

let test_table_formats () =
  Alcotest.(check string) "int" "4,690,640" (Table.fmt_int 4690640);
  Alcotest.(check string) "small int" "42" (Table.fmt_int 42);
  Alcotest.(check string) "neg int" "-1,234" (Table.fmt_int (-1234));
  Alcotest.(check string) "bytes mb" "12.3 MB" (Table.fmt_bytes 12_300_000);
  Alcotest.(check string) "pct" "7.4%" (Table.fmt_pct 7.4)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check bool) "separator" true
    (String.length (List.nth lines 1) > 0 && (List.nth lines 1).[0] = '-')

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniform-ish" `Quick test_prng_uniformish;
          Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
        ] );
      ( "vec",
        [
          Alcotest.test_case "int basics" `Quick test_vec_int_basics;
          Alcotest.test_case "int fold/iter" `Quick test_vec_int_fold_iter;
          Alcotest.test_case "poly" `Quick test_vec_poly;
        ] );
      ( "bigvec",
        [
          Alcotest.test_case "basics" `Quick test_bigvec_basics;
          Alcotest.test_case "copy-on-write snapshot" `Quick
            test_bigvec_cow_snapshot;
          Alcotest.test_case "byte arena" `Quick test_bigvec_byte_arena;
        ] );
      ( "table",
        [
          Alcotest.test_case "formats" `Quick test_table_formats;
          Alcotest.test_case "render" `Quick test_table_render;
        ] );
    ]

(* Pre/size/level plane tests: encoding invariants against the store,
   staircase joins against naive implementations, scoped Db lookups,
   and snapshot invalidation across structural updates. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Plane = Xvi_xml.Pre_plane
module Db = Xvi_core.Db
module Prng = Xvi_util.Prng

let person_doc =
  "<person><name><first>Arthur</first><family>Dent</family></name>\
   <birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age>\
   <weight><kilos>78</kilos>.<grams>230</grams></weight></person>"

let random_store seed =
  let xml = Xvi_workload.Xmark.generate ~seed ~factor:0.003 () in
  Parser.parse_exn xml

let test_encoding_invariants () =
  let store = random_store 61 in
  let plane = Plane.build store in
  Alcotest.(check int) "live nodes" (Store.live_count store) (Plane.live_nodes plane);
  (* pre order = iter_pre order *)
  let i = ref 0 in
  Store.iter_pre store (fun n ->
      Alcotest.(check int) "pre rank" !i (Plane.pre plane n);
      Alcotest.(check int) "node_at inverse" n (Plane.node_at plane !i);
      incr i);
  (* size and level agree with the store *)
  Store.iter_pre store (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "size of %d" n)
        (Store.subtree_size store n - 1)
        (Plane.size plane n);
      Alcotest.(check int)
        (Printf.sprintf "level of %d" n)
        (Store.level store n) (Plane.level plane n))

let test_order_and_descendancy () =
  let store = random_store 62 in
  let plane = Plane.build store in
  let nodes = ref [] in
  Store.iter_pre store (fun n -> nodes := n :: !nodes);
  let arr = Array.of_list !nodes in
  let rng = Prng.create 626 in
  for _ = 1 to 2_000 do
    let a = arr.(Prng.int rng (Array.length arr)) in
    let b = arr.(Prng.int rng (Array.length arr)) in
    Alcotest.(check int) "compare_order agrees with store"
      (compare (Store.compare_order store a b) 0)
      (compare (Plane.compare_order plane a b) 0);
    Alcotest.(check bool) "is_descendant agrees" (Store.is_ancestor store ~ancestor:a b)
      (Plane.is_descendant plane ~ancestor:a b)
  done

let test_descendants_list () =
  let store = Parser.parse_exn person_doc in
  let plane = Plane.build store in
  let person = Plane.node_at plane 1 in
  Alcotest.(check string) "person" "person" (Store.name store person);
  let ds = Plane.descendants plane person in
  Alcotest.(check int) "18 descendants" 18 (List.length ds);
  (* in document order and all strictly below *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "ordered" true (Plane.compare_order plane a b < 0);
        sorted rest
    | _ -> ()
  in
  sorted ds;
  List.iter
    (fun d ->
      Alcotest.(check bool) "descendant" true
        (Plane.is_descendant plane ~ancestor:person d))
    ds

let naive_join_descendant store ~context nodes =
  List.sort_uniq (Store.compare_order store)
    (List.filter
       (fun n -> List.exists (fun c -> Store.is_ancestor store ~ancestor:c n) context)
       nodes)

let naive_join_ancestor store ~context nodes =
  List.sort_uniq (Store.compare_order store)
    (List.filter
       (fun n -> List.exists (fun c -> Store.is_ancestor store ~ancestor:n c) context)
       nodes)

let test_staircase_joins () =
  let store = random_store 63 in
  let plane = Plane.build store in
  let all = ref [] in
  Store.iter_pre store (fun n -> all := n :: !all);
  let arr = Array.of_list !all in
  let rng = Prng.create 636 in
  for _ = 1 to 30 do
    let sample k =
      Array.to_list
        (Array.map (fun i -> arr.(i))
           (Prng.sample_distinct rng (min k (Array.length arr)) (Array.length arr)))
    in
    let context = sample (1 + Prng.int rng 20) in
    let nodes = sample (1 + Prng.int rng 200) in
    Alcotest.(check (list int)) "descendant join"
      (naive_join_descendant store ~context nodes)
      (Plane.join_descendant plane ~context nodes);
    Alcotest.(check (list int)) "ancestor join"
      (naive_join_ancestor store ~context nodes)
      (Plane.join_ancestor plane ~context nodes)
  done

let test_scoped_lookups () =
  let db =
    Db.of_xml_exn
      "<site><a><x>42</x><y>hello</y></a><b><x>42</x><y>hello</y><z>7</z></b></site>"
  in
  let store = Db.store db in
  let b =
    List.find
      (fun n -> Store.kind store n = Store.Element && Store.name store n = "b")
      (let acc = ref [] in
       Store.iter_pre store (fun n -> acc := n :: !acc);
       !acc)
  in
  (* global: two hits each; scoped to <b>: one *)
  Alcotest.(check int) "global hello" 4 (List.length (Db.lookup_string db "hello"))
  (* two texts + two <y> *);
  Alcotest.(check int) "scoped hello" 2
    (List.length (Db.lookup_string_within db ~scope:b "hello"));
  Alcotest.(check int) "scoped 42" 2
    (List.length (Db.lookup_double_within db ~scope:b (Db.Range.between 42.0 42.0)));
  Alcotest.(check int) "scoped 7 in b" 2
    (List.length (Db.lookup_double_within db ~scope:b (Db.Range.between 7.0 7.0)));
  (* scope itself can match: <z>'s own string value is 7 *)
  let z = List.hd (Db.elements_named db "z") in
  Alcotest.(check bool) "scope included" true
    (List.mem z (Db.lookup_double_within db ~scope:z (Db.Range.between 7.0 7.0)))

let test_plane_invalidation () =
  let db = Db.of_xml_exn "<a><b>one</b><c>two</c></a>" in
  let store = Db.store db in
  let p1 = Db.plane db in
  Alcotest.(check bool) "cached" true (p1 == Db.plane db);
  (* a value update keeps the snapshot *)
  Db.update_text db (Store.text_nodes store).(0) "uno";
  Alcotest.(check bool) "still cached after value update" true (p1 == Db.plane db);
  (* a structural update invalidates it *)
  let a = Option.get (Store.first_child store Store.document) in
  (match Db.insert_xml db ~parent:a "<d>three</d>" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insert: %s" (Xvi_xml.Parser.error_to_string e));
  let p2 = Db.plane db in
  Alcotest.(check bool) "rebuilt" true (p1 != p2);
  Alcotest.(check int) "covers the new node" (Store.live_count store)
    (Plane.live_nodes p2);
  (* deletion invalidates too *)
  Db.delete_subtree db (List.hd (Db.elements_named db "b"));
  let p3 = Db.plane db in
  Alcotest.(check bool) "rebuilt again" true (p2 != p3)

let () =
  Alcotest.run "plane"
    [
      ( "plane",
        [
          Alcotest.test_case "encoding invariants" `Quick test_encoding_invariants;
          Alcotest.test_case "order and descendancy" `Quick test_order_and_descendancy;
          Alcotest.test_case "descendants list" `Quick test_descendants_list;
          Alcotest.test_case "staircase joins" `Quick test_staircase_joins;
          Alcotest.test_case "scoped lookups" `Quick test_scoped_lookups;
          Alcotest.test_case "invalidation" `Quick test_plane_invalidation;
        ] );
    ]

(* Durability tests: WAL codec round-trips, torn-tail truncation at
   every byte offset, recovery idempotency, group-commit batching
   observability, snapshot LSN stamping and checkpoint truncation. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Snapshot = Xvi_core.Snapshot
module Txn = Xvi_txn.Txn
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable
module Fault = Xvi_check.Fault

let with_dir f =
  let dir = Filename.temp_file "xvi_wal_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e ->
            try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let db_digest db = Digest.string (Marshal.to_string db [ Marshal.Closures ])

(* Logical content fingerprint, independent of heap representation —
   marshal digests only compare databases that both went through a
   snapshot round-trip, so the live-vs-recovered check uses this. *)
let content_fingerprint db =
  let store = Db.store db in
  let buf = Buffer.create 1024 in
  Store.iter_pre store (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d:%s:%s;" n
           (match Store.kind store n with
           | Store.Document -> 0
           | Store.Element -> 1
           | Store.Text -> 2
           | Store.Attribute -> 3
           | Store.Comment -> 4
           | Store.Pi -> 5
           | Store.Deleted -> 6)
           (match Store.kind store n with
           | Store.Element | Store.Attribute -> Store.name store n
           | _ -> "")
           (match Store.kind store n with
           | Store.Text | Store.Attribute -> Store.text store n
           | _ -> "")));
  Digest.string (Buffer.contents buf)

let records_for_roundtrip =
  [
    Wal.Begin { txn = 0 };
    Wal.Begin { txn = max_int };
    Wal.Update_text { txn = 1; node = 7; value = "" };
    Wal.Update_text { txn = 1; node = 7; value = "plain text" };
    Wal.Update_text { txn = 2; node = 0; value = "\x00\xff\nbinary\x01" };
    Wal.Insert { txn = 3; parent = 12; fragment = "<a b=\"c\">&amp;</a>" };
    Wal.Insert { txn = 3; parent = 0; fragment = "" };
    Wal.Delete { txn = 4; node = 9 };
    Wal.Commit { txn = 4 };
    Wal.Abort { txn = 5 };
    Wal.Checkpoint { base = 0 };
    Wal.Checkpoint { base = 123456789 };
  ]

let test_codec_roundtrip () =
  List.iteri
    (fun i record ->
      let lsn = i + 1 in
      let frame = Wal.encode ~lsn record in
      match Wal.decode frame 0 with
      | Wal.Frame (fr, next) ->
          Alcotest.(check int)
            (Printf.sprintf "lsn of %s" (Wal.record_to_string record))
            lsn fr.Wal.lsn;
          Alcotest.(check string)
            (Printf.sprintf "record %d" i)
            (Wal.record_to_string record)
            (Wal.record_to_string fr.Wal.record);
          Alcotest.(check int) "consumed whole frame" (String.length frame) next
      | Wal.End -> Alcotest.fail "decode returned End on a full frame"
      | Wal.Torn m -> Alcotest.failf "decode tore a valid frame: %s" m)
    records_for_roundtrip

let test_decode_every_torn_prefix () =
  let record =
    Wal.Update_text { txn = 3; node = 41; value = "torn tail probe" }
  in
  let frame = Wal.encode ~lsn:9 record in
  for len = 0 to String.length frame - 1 do
    match Wal.decode (String.sub frame 0 len) 0 with
    | Wal.End when len = 0 -> ()
    | Wal.End -> Alcotest.failf "clean End on %d of %d bytes" len (String.length frame)
    | Wal.Torn _ -> ()
    | Wal.Frame _ ->
        Alcotest.failf "decoded a frame from %d of %d bytes" len
          (String.length frame)
  done

let log_of records =
  let buf = Buffer.create 256 in
  Buffer.add_string buf Wal.magic;
  List.iteri
    (fun i r -> Buffer.add_string buf (Wal.encode ~lsn:(i + 1) r))
    records;
  Buffer.contents buf

let test_scan_committed_prefix () =
  let s =
    log_of
      [
        Wal.Begin { txn = 1 };
        Wal.Update_text { txn = 1; node = 2; value = "a" };
        Wal.Commit { txn = 1 };
        Wal.Begin { txn = 2 };
        Wal.Update_text { txn = 2; node = 3; value = "b" };
        (* no commit: this tail is dead *)
      ]
  in
  match Wal.scan_string s with
  | Error m -> Alcotest.failf "scan failed: %s" m
  | Ok sc ->
      Alcotest.(check int) "committed frames" 3 (List.length sc.Wal.frames);
      Alcotest.(check int) "dropped tail records" 2 sc.Wal.dropped_records;
      Alcotest.(check int) "last committed lsn" 3 sc.Wal.last_lsn;
      Alcotest.(check bool) "no damage" true (sc.Wal.damage = None);
      Alcotest.(check bool) "committed_end before tail" true
        (sc.Wal.committed_end < sc.Wal.file_size)

let test_scan_rejects_non_monotonic () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf Wal.magic;
  Buffer.add_string buf (Wal.encode ~lsn:5 (Wal.Begin { txn = 1 }));
  Buffer.add_string buf (Wal.encode ~lsn:5 (Wal.Commit { txn = 1 }));
  match Wal.scan_string (Buffer.contents buf) with
  | Error m -> Alcotest.failf "scan failed: %s" m
  | Ok sc ->
      Alcotest.(check bool) "damage reported" true (sc.Wal.damage <> None);
      Alcotest.(check int) "nothing committed" 0 (List.length sc.Wal.frames)

let test_scan_bad_magic () =
  (match Wal.scan_string "not a log at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  match Wal.scan_string (String.sub Wal.magic 0 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short magic accepted"

(* The tentpole framing property: cut the log at every byte offset of
   the last record and the scan must still end exactly at the last
   intact commit boundary. *)
let test_torn_tail_every_offset () =
  let committed =
    [
      Wal.Begin { txn = 1 };
      Wal.Update_text { txn = 1; node = 2; value = "first" };
      Wal.Commit { txn = 1 };
    ]
  in
  let prefix = log_of committed in
  let boundary = String.length prefix in
  let last = Wal.encode ~lsn:4 (Wal.Begin { txn = 2 }) in
  let full = prefix ^ last in
  for cut = boundary to String.length full do
    let s = String.sub full 0 cut in
    match Wal.scan_string s with
    | Error m -> Alcotest.failf "scan failed at cut %d: %s" cut m
    | Ok sc ->
        Alcotest.(check int)
          (Printf.sprintf "committed_end at cut %d" cut)
          boundary sc.Wal.committed_end;
        Alcotest.(check int)
          (Printf.sprintf "frames at cut %d" cut)
          3
          (List.length sc.Wal.frames)
  done

(* --- tailing: the replication read path ---------------------------- *)

let append_group w ~txn updates =
  ignore (Wal.Writer.append w (Wal.Begin { txn }) : int);
  List.iter
    (fun (node, value) ->
      ignore (Wal.Writer.append w (Wal.Update_text { txn; node; value }) : int))
    updates;
  fst (Wal.Writer.log_commit w ~txn)

let poll_exn ?upto_lsn ?max_bytes what tail =
  match Wal.Tail.poll ?upto_lsn ?max_bytes tail with
  | Ok ev -> ev
  | Error m -> Alcotest.failf "%s: poll failed: %s" what m

let test_tail_stream () =
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.Writer.create ~sync_mode:Wal.Always path in
      Fun.protect
        ~finally:(fun () -> Wal.Writer.close w)
        (fun () ->
          let l1 = append_group w ~txn:1 [ (1, "one") ] in
          let l2 = append_group w ~txn:2 [ (2, "two"); (3, "three") ] in
          let tail = Wal.Tail.create path in
          (match poll_exn "first poll" tail with
          | Wal.Tail.Frames { frames; bytes } ->
              (* both groups arrive in log order, as the exact on-disk
                 byte suffix after the magic header *)
              let file = read_file path in
              let magic_len = String.length Wal.magic in
              Alcotest.(check string) "bytes are the on-disk frames"
                (String.sub file magic_len (String.length file - magic_len))
                bytes;
              (match List.rev frames with
              | last :: _ -> Alcotest.(check int) "ends at l2" l2 last.Wal.lsn
              | [] -> Alcotest.fail "no frames delivered");
              Alcotest.(check int) "tail position" l2 (Wal.Tail.last_lsn tail)
          | Wal.Tail.Await -> Alcotest.fail "tail had frames but said Await"
          | Wal.Tail.Snapshot_needed _ ->
              Alcotest.fail "contiguous log reported snapshot-needed");
          (match poll_exn "drained poll" tail with
          | Wal.Tail.Await -> ()
          | _ -> Alcotest.fail "drained tail must Await");
          (* a durability watermark withholds groups past it: the next
             group exists on disk but must not ship until upto_lsn
             covers its boundary *)
          let l3 = append_group w ~txn:3 [ (1, "third") ] in
          (match poll_exn ~upto_lsn:l2 "withheld poll" tail with
          | Wal.Tail.Await -> ()
          | _ -> Alcotest.fail "group past upto_lsn must be withheld");
          (match poll_exn ~upto_lsn:l3 "released poll" tail with
          | Wal.Tail.Frames { frames; _ } ->
              (match List.rev frames with
              | last :: _ -> Alcotest.(check int) "ends at l3" l3 last.Wal.lsn
              | [] -> Alcotest.fail "released poll empty")
          | _ -> Alcotest.fail "released group did not ship");
          (* max_bytes caps a batch but always delivers one whole group *)
          let tiny = Wal.Tail.create path in
          (match poll_exn ~max_bytes:1 "capped poll" tiny with
          | Wal.Tail.Frames { frames; _ } -> (
              match List.rev frames with
              | last :: _ ->
                  Alcotest.(check int) "exactly the first group" l1
                    last.Wal.lsn
              | [] -> Alcotest.fail "capped poll empty")
          | _ -> Alcotest.fail "capped poll must still deliver one group");
          ignore (l1 : int)))

let test_tail_torn_tail_awaits () =
  (* An append in flight tears the tail: at every torn prefix of the
     last group the tailer must deliver exactly the committed groups
     before it and then Await — never mis-frame the torn bytes, never
     error. *)
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.Writer.create ~sync_mode:Wal.Always path in
      let l1 = append_group w ~txn:1 [ (1, "committed") ] in
      let boundary = Wal.Writer.size w in
      let _l2 = append_group w ~txn:2 [ (2, "torn away") ] in
      Wal.Writer.close w;
      let full = read_file path in
      let torn_path = Filename.concat dir "torn.log" in
      for cut = boundary to String.length full - 1 do
        write_file torn_path (String.sub full 0 cut);
        let tail = Wal.Tail.create torn_path in
        (match poll_exn (Printf.sprintf "cut %d" cut) tail with
        | Wal.Tail.Frames { frames; _ } -> (
            match List.rev frames with
            | last :: _ ->
                Alcotest.(check int)
                  (Printf.sprintf "only the committed group at cut %d" cut)
                  l1 last.Wal.lsn
            | [] -> Alcotest.fail "empty Frames")
        | Wal.Tail.Await ->
            Alcotest.failf "cut %d: committed group not delivered" cut
        | Wal.Tail.Snapshot_needed _ ->
            Alcotest.failf "cut %d: torn tail misread as truncation" cut);
        match poll_exn (Printf.sprintf "cut %d again" cut) tail with
        | Wal.Tail.Await -> ()
        | Wal.Tail.Frames _ ->
            Alcotest.failf "cut %d: torn bytes shipped as frames" cut
        | Wal.Tail.Snapshot_needed _ ->
            Alcotest.failf "cut %d: torn tail misread as truncation" cut
      done)

let test_tail_checkpoint_truncation () =
  (* A checkpoint truncates the log under a live tailer. The tailer
     must detect the LSN discontinuity and report a typed
     [Snapshot_needed] — not an error, and never silently skip the
     missing records. *)
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.Writer.create ~sync_mode:Wal.Always path in
      let l1 = append_group w ~txn:1 [ (1, "one") ] in
      let _l2 = append_group w ~txn:2 [ (2, "two") ] in
      let last = Wal.Writer.last_lsn w in
      (* a tailer that only consumed the first group... *)
      let tail = Wal.Tail.create path in
      (match poll_exn ~upto_lsn:l1 "consume first group" tail with
      | Wal.Tail.Frames _ -> ()
      | _ -> Alcotest.fail "first group not delivered");
      (* ...while the writer checkpoints everything away *)
      Wal.Writer.truncate_to_checkpoint w ~base:last;
      let l3 = append_group w ~txn:3 [ (1, "after checkpoint") ] in
      Wal.Writer.close w;
      (match poll_exn "poll after truncation" tail with
      | Wal.Tail.Snapshot_needed { base } ->
          Alcotest.(check int) "snapshot covers the checkpoint base" last base
      | Wal.Tail.Frames _ ->
          Alcotest.fail "tailer skipped the checkpointed records"
      | Wal.Tail.Await -> Alcotest.fail "truncation misread as quiet tail");
      (* a fresh tailer from the beginning is in the same position *)
      let fresh = Wal.Tail.create path in
      (match poll_exn "fresh tail" fresh with
      | Wal.Tail.Snapshot_needed { base } ->
          Alcotest.(check int) "fresh tail needs the snapshot too" last base
      | _ -> Alcotest.fail "fresh tail must report snapshot-needed");
      (* but a tailer already past the checkpoint streams on *)
      let caught_up = Wal.Tail.create ~from_lsn:last path in
      match poll_exn "caught-up tail" caught_up with
      | Wal.Tail.Frames { frames; _ } -> (
          match List.rev frames with
          | last_f :: _ ->
              Alcotest.(check int) "post-checkpoint group" l3 last_f.Wal.lsn
          | [] -> Alcotest.fail "post-checkpoint group missing")
      | _ -> Alcotest.fail "tail past the checkpoint must keep streaming")

let test_sync_mode_strings () =
  let check s expect =
    match (Wal.sync_mode_of_string s, expect) with
    | Some got, Some want ->
        Alcotest.(check string) s (Wal.sync_mode_to_string want)
          (Wal.sync_mode_to_string got)
    | None, None -> ()
    | Some got, None ->
        Alcotest.failf "%S parsed as %s" s (Wal.sync_mode_to_string got)
    | None, Some _ -> Alcotest.failf "%S did not parse" s
  in
  check "always" (Some Wal.Always);
  check "never" (Some Wal.Never);
  check "group" (Some (Wal.Group 0.002));
  check "group:10" (Some (Wal.Group 0.01));
  check "group:0" (Some (Wal.Group 0.));
  check "group:-1" None;
  check "sometimes" None

(* --- snapshot LSN stamping (format v3) --- *)

let test_snapshot_lsn_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "s.xvi" in
      let db = Db.of_xml_exn "<a><b>x</b></a>" in
      Snapshot.save ~lsn:42 db path;
      (match Snapshot.load_with_lsn path with
      | Ok (_, lsn) -> Alcotest.(check int) "lsn stamped" 42 lsn
      | Error e -> Alcotest.failf "load: %s" (Snapshot.error_to_string e));
      Snapshot.save db path;
      match Snapshot.load_with_lsn path with
      | Ok (_, lsn) -> Alcotest.(check int) "default lsn" 0 lsn
      | Error e -> Alcotest.failf "load: %s" (Snapshot.error_to_string e))

(* --- durable directories --- *)

let small_xml = "<doc><a>alpha</a><b>beta</b><c n=\"7\">gamma</c></doc>"

let test_durable_recovery_idempotent () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let texts = Store.text_nodes (Db.store db) in
      let t = Durable.create ~dir db in
      (match Durable.update_texts t [ (texts.(0), "one"); (texts.(1), "two") ] with
      | Ok () -> ()
      | Error c -> Alcotest.failf "commit conflicted: %s" c.Txn.reason);
      (match Durable.update_text t texts.(2) "three" with
      | Ok () -> ()
      | Error c -> Alcotest.failf "commit conflicted: %s" c.Txn.reason);
      (match Durable.insert_xml t ~parent:Store.document "<tail>end</tail>" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "insert: %s" (Xvi_xml.Parser.error_to_string e));
      let live_fp = content_fingerprint (Durable.db t) in
      Durable.close t;
      let r1 = Durable.open_exn dir in
      let d1 = db_digest (Durable.db r1) in
      (match Durable.last_replay r1 with
      | Some rep ->
          Alcotest.(check int) "replayed txns" 3 rep.Wal.stats.Wal.applied_txns
      | None -> Alcotest.fail "no replay report");
      Durable.close r1;
      let r2 = Durable.open_exn dir in
      let d2 = db_digest (Durable.db r2) in
      Durable.close r2;
      Alcotest.(check bool) "recovery matches live content" true
        (content_fingerprint (Durable.db r2) = live_fp);
      Alcotest.(check bool) "double recovery bit-identical" true (d1 = d2);
      (* the recovered store answers queries *)
      let r3 = Durable.open_exn dir in
      Alcotest.(check bool) "query works" true
        (Db.lookup_string (Durable.db r3) "one" <> []);
      Durable.close r3)

let test_durable_rejects_validation_errors () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let t = Durable.create ~dir db in
      (match Durable.insert_xml t ~parent:Store.document "<unclosed" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad fragment accepted");
      (match Durable.delete_subtree t Store.document with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "deleted the document root");
      (* neither failure may have logged anything *)
      Alcotest.(check int) "wal untouched" (String.length Wal.magic)
        (Durable.stats t).Durable.wal_bytes;
      Durable.close t)

(* The review-found recovery-bricking scenario: an Insert whose parent
   is invalid must be rejected *before* its records reach the log — a
   durably committed record that fails to apply would make every later
   open of the directory fail. *)
let test_insert_parent_validated () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let store = Db.store db in
      let texts = Store.text_nodes store in
      let t = Durable.create ~dir db in
      let header = String.length Wal.magic in
      (match Durable.insert_xml t ~parent:999_999 "<x/>" with
      | exception Invalid_argument _ -> ()
      | Ok _ | Error _ -> Alcotest.fail "out-of-range parent accepted");
      (match Durable.insert_xml t ~parent:texts.(0) "<x/>" with
      | exception Invalid_argument _ -> ()
      | Ok _ | Error _ -> Alcotest.fail "text node accepted as parent");
      Alcotest.(check int) "nothing logged for rejected inserts" header
        (Durable.stats t).Durable.wal_bytes;
      (* delete <a>, then try to insert under the tombstoned element *)
      let a_elt =
        match Store.parent store texts.(0) with
        | Some p -> p
        | None -> Alcotest.fail "text node has no parent"
      in
      Durable.delete_subtree t a_elt;
      let after_delete = (Durable.stats t).Durable.wal_bytes in
      (match Durable.insert_xml t ~parent:a_elt "<x/>" with
      | exception Invalid_argument _ -> ()
      | Ok _ | Error _ -> Alcotest.fail "deleted parent accepted");
      (match Durable.delete_subtree t a_elt with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "double delete accepted");
      Alcotest.(check int) "nothing logged past the legitimate delete"
        after_delete
        (Durable.stats t).Durable.wal_bytes;
      let live_fp = content_fingerprint (Durable.db t) in
      Durable.close t;
      (* the log replays cleanly: no doomed record ever got in *)
      let r = Durable.open_exn dir in
      Alcotest.(check bool) "recovery intact" true
        (content_fingerprint (Durable.db r) = live_fp);
      Durable.close r)

(* Structural deletes bypass the Txn version table; the commit-time
   kind re-check must turn the doomed write into a conflict before the
   durability hook logs anything. *)
let test_delete_bypass_is_conflict () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let store = Db.store db in
      let texts = Store.text_nodes store in
      let t = Durable.create ~dir db in
      let tx = Txn.begin_ (Durable.manager t) in
      (match Txn.update_text tx texts.(0) "doomed" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "update_text rejected a live text node");
      let a_elt =
        match Store.parent store texts.(0) with
        | Some p -> p
        | None -> Alcotest.fail "text node has no parent"
      in
      Durable.delete_subtree t a_elt;
      let wal_after_delete = (Durable.stats t).Durable.wal_bytes in
      (match Txn.commit tx with
      | Error c ->
          Alcotest.(check int) "conflict names the deleted node" texts.(0)
            c.Txn.node
      | Ok () -> Alcotest.fail "commit applied a write to a deleted node");
      Alcotest.(check int) "conflicted commit logged nothing" wal_after_delete
        (Durable.stats t).Durable.wal_bytes;
      let live_fp = content_fingerprint (Durable.db t) in
      Durable.close t;
      let r = Durable.open_exn dir in
      Alcotest.(check bool) "recovery intact after conflict" true
        (content_fingerprint (Durable.db r) = live_fp);
      Durable.close r)

let test_create_refuses_existing () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      Durable.close (Durable.create ~dir db);
      (match Durable.create ~dir (Db.of_xml_exn "<other/>") with
      | exception Invalid_argument _ -> ()
      | t ->
          Durable.close t;
          Alcotest.fail "create silently overwrote a durable directory");
      (* the data survived the refused attempt *)
      let r = Durable.open_exn dir in
      Alcotest.(check bool) "original store intact" true
        (Db.lookup_string (Durable.db r) "alpha" <> []);
      Durable.close r;
      let t = Durable.create ~force:true ~dir (Db.of_xml_exn "<other/>") in
      Durable.close t;
      let r = Durable.open_exn dir in
      Alcotest.(check bool) "force overwrote" true
        (Db.lookup_string (Durable.db r) "alpha" = []);
      Durable.close r)

(* An aged-out group window is flushed by the first record of the next
   transaction, so a deferred commit's durability lag is bounded by the
   next activity (or an explicit sync/close) rather than only by
   close. *)
let test_group_window_flush_on_append () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let texts = Store.text_nodes (Db.store db) in
      let t = Durable.create ~sync_mode:(Wal.Group 0.005) ~dir db in
      (match Durable.update_text t texts.(0) "one" with
      | Ok () -> ()
      | Error c -> Alcotest.failf "conflict: %s" c.Txn.reason);
      Alcotest.(check int) "first commit deferred, no fsync yet" 0
        (Durable.stats t).Durable.writer.Wal.Writer.syncs;
      Unix.sleepf 0.02;
      (match Durable.update_text t texts.(1) "two" with
      | Ok () -> ()
      | Error c -> Alcotest.failf "conflict: %s" c.Txn.reason);
      Alcotest.(check int) "expired window flushed by next txn's append" 1
        (Durable.stats t).Durable.writer.Wal.Writer.syncs;
      Durable.close t)

let test_group_commit_observable () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let texts = Store.text_nodes (Db.store db) in
      (* a very wide window: every commit inside it is deferred *)
      let t = Durable.create ~sync_mode:(Wal.Group 60.0) ~dir db in
      for i = 1 to 5 do
        match Durable.update_text t texts.(i mod 3) (string_of_int i) with
        | Ok () -> ()
        | Error c -> Alcotest.failf "conflict: %s" c.Txn.reason
      done;
      let st = Txn.stats (Durable.manager t) in
      Alcotest.(check int) "commits" 5 st.Txn.committed;
      Alcotest.(check int) "all deferred" 5 st.Txn.wal_deferred;
      Alcotest.(check int) "none synced inline" 0 st.Txn.wal_synced;
      let w = (Durable.stats t).Durable.writer in
      Alcotest.(check int) "one batched fsync at most" 0 w.Wal.Writer.syncs;
      Durable.sync t;
      let w = (Durable.stats t).Durable.writer in
      Alcotest.(check int) "explicit sync flushed the window" 1
        w.Wal.Writer.syncs;
      Durable.close t;
      (* Always: every commit syncs inline *)
      let dir2 = Filename.concat dir "always" in
      let db2 = Db.of_xml_exn small_xml in
      let texts2 = Store.text_nodes (Db.store db2) in
      let t2 = Durable.create ~sync_mode:Wal.Always ~dir:dir2 db2 in
      for i = 1 to 3 do
        match Durable.update_text t2 texts2.(0) (string_of_int i) with
        | Ok () -> ()
        | Error c -> Alcotest.failf "conflict: %s" c.Txn.reason
      done;
      let st2 = Txn.stats (Durable.manager t2) in
      Alcotest.(check int) "all synced" 3 st2.Txn.wal_synced;
      Alcotest.(check int) "none deferred" 0 st2.Txn.wal_deferred;
      Durable.close t2;
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir2 e) with Sys_error _ -> ())
        (Sys.readdir dir2);
      Unix.rmdir dir2)

let test_checkpoint_truncates () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let texts = Store.text_nodes (Db.store db) in
      let t = Durable.create ~dir db in
      for i = 1 to 10 do
        match Durable.update_text t texts.(0) (string_of_int i) with
        | Ok () -> ()
        | Error c -> Alcotest.failf "conflict: %s" c.Txn.reason
      done;
      let before = (Durable.stats t).Durable.wal_bytes in
      Durable.checkpoint t;
      let st = Durable.stats t in
      Alcotest.(check bool) "log shrank" true (st.Durable.wal_bytes < before);
      Alcotest.(check bool) "checkpoint lsn advanced" true
        (st.Durable.last_checkpoint_lsn > 0);
      let lsn_before = st.Durable.next_lsn in
      Durable.close t;
      (* recovery after a checkpoint applies nothing and keeps state *)
      let r = Durable.open_exn dir in
      (match Durable.last_replay r with
      | Some rep ->
          Alcotest.(check int) "nothing replayed" 0
            rep.Wal.stats.Wal.applied_txns;
          Alcotest.(check int) "nothing skipped" 0
            rep.Wal.stats.Wal.skipped_txns
      | None -> Alcotest.fail "no replay report");
      Alcotest.(check string) "state preserved" "10"
        (Store.text (Db.store (Durable.db r)) texts.(0));
      (* LSNs never restart, even across checkpoint truncation *)
      Alcotest.(check bool) "lsn monotonic across reopen" true
        ((Durable.stats r).Durable.next_lsn >= lsn_before);
      Durable.close r)

let test_auto_checkpoint () =
  with_dir (fun dir ->
      let db = Db.of_xml_exn small_xml in
      let texts = Store.text_nodes (Db.store db) in
      let t = Durable.create ~auto_checkpoint_bytes:256 ~dir db in
      for i = 1 to 50 do
        match
          Durable.update_text t texts.(0)
            (Printf.sprintf "padding padding padding %d" i)
        with
        | Ok () -> ()
        | Error c -> Alcotest.failf "conflict: %s" c.Txn.reason
      done;
      let st = Durable.stats t in
      Alcotest.(check bool) "auto-checkpoint fired" true
        (st.Durable.last_checkpoint_lsn > 0);
      Alcotest.(check bool) "log stayed bounded" true
        (st.Durable.wal_bytes < 4096);
      Durable.close t;
      let r = Durable.open_exn dir in
      Alcotest.(check string) "state survives auto-checkpoints" "padding padding padding 50"
        (Store.text (Db.store (Durable.db r)) texts.(0));
      Durable.close r)

let test_open_missing_and_damaged () =
  with_dir (fun dir ->
      (match Durable.open_ (Filename.concat dir "nowhere") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "opened a missing directory");
      let db = Db.of_xml_exn small_xml in
      let t = Durable.create ~dir db in
      Durable.close t;
      Alcotest.(check bool) "is_durable_dir" true (Durable.is_durable_dir dir);
      (* damaged snapshot: open must fail cleanly *)
      let snap = Filename.concat dir "snapshot.xvi" in
      let bytes = read_file snap in
      write_file snap (String.sub bytes 0 (String.length bytes / 2));
      match Durable.open_ dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "opened over a torn snapshot")

(* --- the full crash-point sweep --- *)

let test_wal_sweep () =
  let db = Db.of_xml_exn small_xml in
  let texts = Store.text_nodes (Db.store db) in
  let batches =
    [
      [ (texts.(0), "sweep one") ];
      [ (texts.(1), "sweep two"); (texts.(2), "sweep three") ];
      [ (texts.(0), "sweep four") ];
    ]
  in
  match Fault.wal_sweep db batches with
  | Error m -> Alcotest.fail m
  | Ok r ->
      Alcotest.(check int) "commits" 5 r.Fault.commits;
      Alcotest.(check bool) "swept every byte" true (r.Fault.crash_points > 100);
      Alcotest.(check bool) "flipped bytes" true (r.Fault.wal_flips > 50)

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "every torn prefix" `Quick
            test_decode_every_torn_prefix;
          Alcotest.test_case "sync-mode strings" `Quick test_sync_mode_strings;
        ] );
      ( "scan",
        [
          Alcotest.test_case "committed prefix" `Quick
            test_scan_committed_prefix;
          Alcotest.test_case "non-monotonic lsn" `Quick
            test_scan_rejects_non_monotonic;
          Alcotest.test_case "bad magic" `Quick test_scan_bad_magic;
          Alcotest.test_case "tail streams committed groups" `Quick
            test_tail_stream;
          Alcotest.test_case "tail awaits on torn tail" `Quick
            test_tail_torn_tail_awaits;
          Alcotest.test_case "tail detects checkpoint truncation" `Quick
            test_tail_checkpoint_truncation;
          Alcotest.test_case "torn tail at every offset" `Quick
            test_torn_tail_every_offset;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "lsn roundtrip" `Quick test_snapshot_lsn_roundtrip ] );
      ( "durable",
        [
          Alcotest.test_case "recovery idempotent" `Quick
            test_durable_recovery_idempotent;
          Alcotest.test_case "validation before logging" `Quick
            test_durable_rejects_validation_errors;
          Alcotest.test_case "insert parent validated" `Quick
            test_insert_parent_validated;
          Alcotest.test_case "structural delete conflicts txn" `Quick
            test_delete_bypass_is_conflict;
          Alcotest.test_case "create refuses existing" `Quick
            test_create_refuses_existing;
          Alcotest.test_case "expired group window flushes" `Quick
            test_group_window_flush_on_append;
          Alcotest.test_case "group commit observable" `Quick
            test_group_commit_observable;
          Alcotest.test_case "checkpoint truncates" `Quick
            test_checkpoint_truncates;
          Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
          Alcotest.test_case "missing and damaged" `Quick
            test_open_missing_and_damaged;
        ] );
      ( "crash sweep",
        [ Alcotest.test_case "every crash point" `Quick test_wal_sweep ] );
    ]

(* B+tree tests: unit cases plus model checking against Stdlib.Map under
   random insert/remove/lookup workloads, at several node orders. *)

module BT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Int_key)
module IM = Map.Make (Int)

let check_inv t =
  match BT.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant violated: %s" e

let test_empty () =
  let t : int BT.t = BT.create () in
  Alcotest.(check int) "length" 0 (BT.length t);
  Alcotest.(check bool) "is_empty" true (BT.is_empty t);
  Alcotest.(check (option int)) "find" None (BT.find t 1);
  Alcotest.(check bool) "remove" false (BT.remove t 1);
  Alcotest.(check (option (pair int int))) "min" None (BT.min_binding t);
  Alcotest.(check int) "height" 0 (BT.height t);
  check_inv t

let test_insert_find () =
  let t = BT.create ~order:4 () in
  for i = 0 to 499 do
    BT.insert t ((i * 37) mod 501) i
  done;
  check_inv t;
  for i = 0 to 499 do
    let k = (i * 37) mod 501 in
    Alcotest.(check (option int)) "find" (Some i) (BT.find t k)
  done;
  Alcotest.(check int) "length" 500 (BT.length t)

let test_replace () =
  let t = BT.create () in
  BT.insert t 1 "a";
  BT.insert t 1 "b";
  Alcotest.(check int) "length" 1 (BT.length t);
  Alcotest.(check (option string)) "value" (Some "b") (BT.find t 1)

let test_iteration_sorted () =
  let t = BT.create ~order:6 () in
  let keys = List.init 300 (fun i -> (i * 7919) mod 1000) in
  List.iter (fun k -> BT.insert t k k) keys;
  let collected = BT.fold (fun k _ acc -> k :: acc) t [] in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check (list int)) "ascending" sorted (List.rev collected)

let test_range () =
  let t = BT.create ~order:4 () in
  for i = 0 to 99 do
    BT.insert t (i * 2) i (* even keys 0..198 *)
  done;
  let keys lo hi = List.map fst (BT.range ?lo ?hi t) in
  Alcotest.(check (list int)) "mid" [ 10; 12; 14 ] (keys (Some 10) (Some 14));
  Alcotest.(check (list int)) "between keys" [ 10; 12; 14 ]
    (keys (Some 9) (Some 15));
  Alcotest.(check (list int)) "open lo" [ 0; 2; 4 ] (keys None (Some 4));
  Alcotest.(check (list int)) "open hi" [ 196; 198 ] (keys (Some 195) None);
  Alcotest.(check int) "full" 100 (List.length (keys None None));
  Alcotest.(check (list int)) "empty range" [] (keys (Some 15) (Some 15));
  Alcotest.(check (list int)) "singleton" [ 16 ] (keys (Some 16) (Some 16))

let test_min_max () =
  let t = BT.create ~order:4 () in
  List.iter (fun k -> BT.insert t k (string_of_int k)) [ 42; 7; 99; 13 ];
  Alcotest.(check (option (pair int string))) "min" (Some (7, "7")) (BT.min_binding t);
  Alcotest.(check (option (pair int string))) "max" (Some (99, "99")) (BT.max_binding t)

let test_delete_all () =
  let t = BT.create ~order:4 () in
  let n = 1000 in
  for i = 0 to n - 1 do
    BT.insert t i i
  done;
  (* delete in a scrambled order, checking invariants as we go *)
  for i = 0 to n - 1 do
    let k = (i * 271) mod n in
    Alcotest.(check bool) "removed" true (BT.remove t k);
    if i mod 97 = 0 then check_inv t
  done;
  check_inv t;
  Alcotest.(check int) "empty" 0 (BT.length t);
  Alcotest.(check int) "height" 0 (BT.height t)

let test_duplicate_logical_keys () =
  (* posting-list style: composite (hash, node) keys *)
  let module PT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Int_pair_key) in
  let t = PT.create ~order:8 () in
  for node = 0 to 199 do
    PT.insert t (node mod 5, node) ()
  done;
  let posting h =
    List.map
      (fun ((_, n), ()) -> n)
      (PT.range ~lo:(h, min_int) ~hi:(h, max_int) t)
  in
  Alcotest.(check int) "posting size" 40 (List.length (posting 3));
  List.iter
    (fun n -> Alcotest.(check int) "right bucket" 3 (n mod 5))
    (posting 3);
  (match PT.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pair tree: %s" e)

let test_float_key_nan () =
  let module FT = Xvi_btree.Btree.Make (Xvi_btree.Btree.Float_pair_key) in
  let t = FT.create () in
  FT.insert t (Float.nan, 1) "nan";
  FT.insert t (1.0, 2) "one";
  FT.insert t (Float.neg_infinity, 3) "ninf";
  Alcotest.(check int) "all inserted" 3 (FT.length t);
  (* NaN sorts last; a real-valued range must not see it *)
  let reals = FT.range ~lo:(Float.neg_infinity, min_int) ~hi:(Float.infinity, max_int) t in
  Alcotest.(check int) "range excludes NaN" 2 (List.length reals)

(* Model check vs Map: random ops, seeded, several orders. *)
let model_check ~order ~ops ~key_space seed =
  let rng = Xvi_util.Prng.create seed in
  let t = BT.create ~order () in
  let model = ref IM.empty in
  for step = 1 to ops do
    let k = Xvi_util.Prng.int rng key_space in
    (match Xvi_util.Prng.int rng 100 with
    | r when r < 55 ->
        BT.insert t k step;
        model := IM.add k step !model
    | r when r < 85 ->
        let removed = BT.remove t k in
        Alcotest.(check bool)
          (Printf.sprintf "remove agrees at step %d" step)
          (IM.mem k !model) removed;
        model := IM.remove k !model
    | _ ->
        Alcotest.(check (option int))
          (Printf.sprintf "find agrees at step %d" step)
          (IM.find_opt k !model) (BT.find t k));
    if step mod 500 = 0 then begin
      (match BT.check_invariants t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invariant after %d ops (order %d): %s" step order e);
      Alcotest.(check int) "length agrees" (IM.cardinal !model) (BT.length t)
    end
  done;
  (* final: full contents agree, in order *)
  let tree_list = List.rev (BT.fold (fun k v acc -> (k, v) :: acc) t []) in
  let model_list = IM.bindings !model in
  Alcotest.(check (list (pair int int))) "final contents" model_list tree_list

let test_model_small_order () = model_check ~order:4 ~ops:5_000 ~key_space:300 1
let test_model_default_order () = model_check ~order:32 ~ops:8_000 ~key_space:2_000 2
let test_model_dense_keys () = model_check ~order:8 ~ops:6_000 ~key_space:50 3

let test_model_range_consistency () =
  let rng = Xvi_util.Prng.create 17 in
  let t = BT.create ~order:4 () in
  let model = ref IM.empty in
  for step = 1 to 2_000 do
    let k = Xvi_util.Prng.int rng 500 in
    if Xvi_util.Prng.bool rng then begin
      BT.insert t k step;
      model := IM.add k step !model
    end
    else begin
      ignore (BT.remove t k);
      model := IM.remove k !model
    end;
    if step mod 100 = 0 then begin
      let lo = Xvi_util.Prng.int rng 500 in
      let hi = lo + Xvi_util.Prng.int rng 100 in
      let tree = List.map fst (BT.range ~lo ~hi t) in
      let expected =
        IM.bindings !model
        |> List.filter (fun (k, _) -> k >= lo && k <= hi)
        |> List.map fst
      in
      Alcotest.(check (list int)) "range agrees" expected tree
    end
  done

let test_bulk_load () =
  (* of_sorted_array must produce valid trees at many sizes and orders *)
  List.iter
    (fun order ->
      List.iter
        (fun n ->
          let arr = Array.init n (fun i -> (i * 3, i)) in
          let t = BT.of_sorted_array ~order arr in
          (match BT.check_invariants t with
          | Ok () -> ()
          | Error e -> Alcotest.failf "bulk n=%d order=%d: %s" n order e);
          Alcotest.(check int) "length" n (BT.length t);
          (* contents and iteration order *)
          let listed = List.rev (BT.fold (fun k v acc -> (k, v) :: acc) t []) in
          Alcotest.(check bool) "contents" true (listed = Array.to_list arr);
          (* random point lookups *)
          if n > 0 then begin
            Alcotest.(check (option int)) "first" (Some 0) (BT.find t 0);
            Alcotest.(check (option int)) "last" (Some (n - 1)) (BT.find t ((n - 1) * 3));
            Alcotest.(check (option int)) "miss" None (BT.find t 1)
          end)
        [ 0; 1; 2; 5; 31; 32; 33; 63; 100; 1000; 4097 ])
    [ 4; 8; 32 ];
  (* a bulk-loaded tree keeps working under mutation *)
  let arr = Array.init 500 (fun i -> (i * 2, i)) in
  let t = BT.of_sorted_array ~order:8 arr in
  for i = 0 to 499 do
    BT.insert t ((i * 2) + 1) (-i)
  done;
  (match BT.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after inserts: %s" e);
  Alcotest.(check int) "grown" 1000 (BT.length t);
  for i = 0 to 499 do
    ignore (BT.remove t (i * 2))
  done;
  (match BT.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after removes: %s" e);
  Alcotest.(check int) "shrunk" 500 (BT.length t)

let test_bulk_load_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Btree.of_sorted_array: keys not strictly ascending")
    (fun () -> ignore (BT.of_sorted_array [| (2, 0); (1, 0) |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Btree.of_sorted_array: keys not strictly ascending")
    (fun () -> ignore (BT.of_sorted_array [| (1, 0); (1, 1) |]))

let test_memory_accounting () =
  let t = BT.create () in
  let empty = BT.memory_bytes ~value_bytes:8 t in
  for i = 0 to 9_999 do
    BT.insert t i i
  done;
  let full = BT.memory_bytes ~value_bytes:8 t in
  Alcotest.(check bool) "grows" true (full > empty);
  (* at least 16 bytes per binding must be accounted *)
  Alcotest.(check bool) "plausible lower bound" true (full > 10_000 * 16);
  Alcotest.(check bool) "node count sane" true (BT.node_count t > 10_000 / 33)

(* --- Order-preserving byte encodings (Encoding) ---

   The whole contract of the byte-key tree is one property: encoding
   must turn value order into byte order. Each property below drives a
   key codomain through its adversarial corners — int bounds, negative
   zero, NaN, subnormals, infinities, NUL bytes and prefix pairs. *)

module Enc = Xvi_btree.Encoding

let sign c = compare c 0

let gen_int =
  QCheck2.Gen.(
    oneof
      [
        int;
        oneofl [ min_int; max_int; 0; 1; -1; min_int + 1; max_int - 1 ];
        map (fun b -> if b then 1 lsl 62 else -(1 lsl 62)) bool;
      ])

let prop_int_order =
  QCheck2.Test.make ~name:"int_key preserves order" ~count:5000
    QCheck2.Gen.(pair gen_int gen_int)
    (fun (a, b) ->
      sign (String.compare (Enc.int_key a) (Enc.int_key b))
      = sign (Int.compare a b))

let prop_int_roundtrip =
  QCheck2.Test.make ~name:"int_key roundtrips" ~count:5000 gen_int (fun a ->
      Enc.decode_int (Enc.int_key a) 0 = a)

let gen_float =
  QCheck2.Gen.(
    oneof
      [
        float;
        oneofl
          [
            0.0; -0.0; 1.0; -1.0; Float.infinity; Float.neg_infinity;
            Float.min_float; -.Float.min_float; Float.max_float;
            -.Float.max_float; 4.9e-324; -4.9e-324; epsilon_float;
          ];
      ])

let prop_float_order =
  QCheck2.Test.make ~name:"float_key preserves order (non-NaN)" ~count:5000
    QCheck2.Gen.(pair gen_float gen_float)
    (fun (a, b) ->
      sign (String.compare (Enc.float_key a) (Enc.float_key b))
      = sign (Float.compare (a +. 0.) (b +. 0.)))

let prop_float_nan_last =
  QCheck2.Test.make ~name:"NaN sorts after every float" ~count:1000 gen_float
    (fun a -> String.compare (Enc.float_key Float.nan) (Enc.float_key a) >= 0)

let prop_float_roundtrip =
  QCheck2.Test.make ~name:"float_key roundtrips (bit-exact after -0 -> +0)"
    ~count:5000 gen_float (fun a ->
      Int64.equal
        (Int64.bits_of_float (Enc.decode_float (Enc.float_key a) 0))
        (Int64.bits_of_float (a +. 0.)))

(* strings with NUL bytes and deliberate prefix pairs *)
let gen_raw_string =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 24))

let gen_string_pair =
  QCheck2.Gen.(
    oneof
      [
        pair gen_raw_string gen_raw_string;
        (* prefix pairs: the terminator must keep "ab" < "ab\x00..." *)
        map (fun (s, t) -> (s, s ^ t)) (pair gen_raw_string gen_raw_string);
      ])

let prop_string_order =
  QCheck2.Test.make ~name:"string_key preserves order" ~count:5000
    gen_string_pair (fun (a, b) ->
      sign (String.compare (Enc.string_key a) (Enc.string_key b))
      = sign (String.compare a b))

let prop_composite_order =
  QCheck2.Test.make ~name:"float_int_key orders by (value, node)" ~count:5000
    QCheck2.Gen.(pair (pair gen_float gen_int) (pair gen_float gen_int))
    (fun ((v1, n1), (v2, n2)) ->
      let expected =
        match Float.compare (v1 +. 0.) (v2 +. 0.) with
        | 0 -> Int.compare n1 n2
        | c -> c
      in
      sign (String.compare (Enc.float_int_key v1 n1) (Enc.float_int_key v2 n2))
      = sign expected)

(* The Bytes tree over encoded keys iterates in exactly the value order
   the encodings promise. *)
let test_bytes_tree_value_order () =
  let module BK = Xvi_btree.Btree.Bytes in
  let prng = Xvi_util.Prng.create 3 in
  let pairs =
    List.init 2000 (fun i ->
        ((float_of_int (Xvi_util.Prng.in_range prng (-500) 500) /. 8.0), i))
  in
  let t = BK.create () in
  List.iter (fun (v, n) -> BK.insert t (Enc.float_int_key v n) ()) pairs;
  let got = ref [] in
  BK.iter (fun k () -> got := (Enc.decode_float k 0, Enc.decode_int k 8) :: !got) t;
  let expected =
    List.sort
      (fun (v1, n1) (v2, n2) ->
        match Float.compare v1 v2 with 0 -> Int.compare n1 n2 | c -> c)
      pairs
  in
  Alcotest.(check (list (pair (float 0.0) int)))
    "iteration is (value, node) order" expected (List.rev !got);
  match BK.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant violated: %s" e

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "btree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "sorted iteration" `Quick test_iteration_sorted;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "delete all" `Quick test_delete_all;
          Alcotest.test_case "duplicates via pairs" `Quick test_duplicate_logical_keys;
          Alcotest.test_case "bulk load" `Quick test_bulk_load;
          Alcotest.test_case "bulk load rejects unsorted" `Quick
            test_bulk_load_rejects_unsorted;
          Alcotest.test_case "float keys and NaN" `Quick test_float_key_nan;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
        ] );
      ( "model",
        [
          Alcotest.test_case "order 4" `Quick test_model_small_order;
          Alcotest.test_case "order 32" `Quick test_model_default_order;
          Alcotest.test_case "dense keys" `Quick test_model_dense_keys;
          Alcotest.test_case "ranges" `Quick test_model_range_consistency;
        ] );
      ( "encoding",
        Alcotest.test_case "bytes tree in value order" `Quick
          test_bytes_tree_value_order
        :: qcheck
             [
               prop_int_order;
               prop_int_roundtrip;
               prop_float_order;
               prop_float_nan_last;
               prop_float_roundtrip;
               prop_string_order;
               prop_composite_order;
             ] );
    ]

(* End-to-end tests for the string equality index, the typed range
   indices (both reconstruction modes), and the Db bundle — including
   the paper's own example queries and randomised update/delete/insert
   maintenance checked against from-scratch rebuilds. *)

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module SI = Xvi_core.String_index
module TI = Xvi_core.Typed_index
module Db = Xvi_core.Db
module LT = Xvi_core.Lexical_types
module Prng = Xvi_util.Prng

let person_doc =
  "<person><name><first>Arthur</first><family>Dent</family></name>\
   <birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age>\
   <weight><kilos>78</kilos>.<grams>230</grams></weight></person>"

let ok_or_fail what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let names store nodes =
  List.filter_map
    (fun n ->
      match Store.kind store n with
      | Store.Element -> Some (Store.name store n)
      | _ -> None)
    nodes

(* --- string index --- *)

let test_string_lookup_basics () =
  let store = Parser.parse_exn person_doc in
  let idx = SI.create store in
  ok_or_fail "validate" (SI.validate idx store);
  (* text node lookup *)
  let hits = SI.lookup idx store "Arthur" in
  Alcotest.(check int) "Arthur hits" 2 (List.length hits) (* text + <first> *);
  Alcotest.(check (list string)) "element hit" [ "first" ] (names store hits);
  (* element string value, the paper's fn:data example *)
  Alcotest.(check (list string)) "ArthurDent" [ "name" ]
    (names store (SI.lookup idx store "ArthurDent"));
  (* whole-person value *)
  Alcotest.(check (list string)) "person" [ "person" ]
    (names store (SI.lookup idx store "ArthurDent1966-09-264278.230"));
  (* mixed content *)
  Alcotest.(check (list string)) "42 is the age element" [ "age" ]
    (names store (SI.lookup idx store "42"));
  (* empty element: its string value is "" *)
  let empties = SI.lookup idx store "" in
  Alcotest.(check bool) "years found among empties" true
    (List.mem "years" (names store empties));
  (* miss *)
  Alcotest.(check (list int)) "miss" [] (SI.lookup idx store "Zaphod")

let test_string_attribute_lookup () =
  let store = Parser.parse_exn "<a><b id=\"x1\">x1</b><c id=\"x2\"/></a>" in
  let idx = SI.create store in
  let hits = SI.lookup idx store "x1" in
  (* the attribute, the text node, <b> — and <a> and the document node,
     whose concatenated string values are also "x1" since <c> is empty *)
  Alcotest.(check int) "five hits" 5 (List.length hits);
  let kinds = List.map (Store.kind store) hits in
  Alcotest.(check bool) "attr among hits" true (List.mem Store.Attribute kinds)

let test_string_collision_filtering () =
  (* engineered colliding strings must not cross-contaminate lookups *)
  let rng = Prng.create 5 in
  let tg = Xvi_workload.Text_gen.create rng in
  let urls = Xvi_workload.Text_gen.colliding_urls tg 4 in
  let doc =
    "<d>" ^ String.concat "" (List.map (fun u -> "<u>" ^ u ^ "</u>") urls) ^ "</d>"
  in
  let store = Parser.parse_exn doc in
  let idx = SI.create store in
  (* all four hash equal *)
  let h = Xvi_core.Hash.hash (List.hd urls) in
  List.iter
    (fun u ->
      Alcotest.(check bool) "same hash" true
        (Xvi_core.Hash.equal h (Xvi_core.Hash.hash u)))
    urls;
  (* candidates see all, verified lookup sees exactly one text + one <u> *)
  let u0 = List.hd urls in
  Alcotest.(check bool) "candidates >= 8" true
    (List.length (SI.lookup_candidates idx store u0) >= 8);
  Alcotest.(check int) "verified = 2" 2 (List.length (SI.lookup idx store u0))

let test_string_update_maintenance () =
  let store = Parser.parse_exn person_doc in
  let idx = SI.create store in
  let texts = Store.text_nodes store in
  Store.set_text store texts.(1) "Prefect";
  SI.update_texts idx store [ texts.(1) ];
  ok_or_fail "validate after update" (SI.validate idx store);
  Alcotest.(check (list string)) "new name" [ "name" ]
    (names store (SI.lookup idx store "ArthurPrefect"));
  Alcotest.(check (list int)) "old gone" []
    (SI.lookup idx store "ArthurDent")

let test_string_entry_count_and_storage () =
  let store = Parser.parse_exn person_doc in
  let idx = SI.create store in
  (* document + 10 elements + 8 texts = 19 indexable nodes *)
  Alcotest.(check int) "entries" 20 (SI.entry_count idx);
  Alcotest.(check bool) "storage positive" true (SI.storage_bytes idx > 0)

(* --- typed index --- *)

let test_typed_basics () =
  let store = Parser.parse_exn person_doc in
  let ti = TI.create (LT.double ()) store in
  ok_or_fail "validate" (TI.validate ti store);
  (* 42 matches only the <age> element (the texts are "4" and "2") *)
  let hits = TI.equals ti 42.0 in
  Alcotest.(check (list string)) "age" [ "age" ] (names store hits);
  (* weight assembles to 78.230 *)
  let w = TI.range ~lo:78.0 ~hi:79.0 ti in
  Alcotest.(check int) "78-79 hits" 3 (List.length w)
  (* kilos text "78", <kilos>, and <weight> 78.230 *);
  (* open-ended ranges *)
  Alcotest.(check bool) "lo only" true (List.length (TI.range ~lo:100.0 ti) >= 2)
  (* birthday? no — 1966-09-26 is not a double; 230 and grams *);
  Alcotest.(check int) "everything"
    (TI.entry_count ti)
    (List.length (TI.range ti))

let test_typed_states () =
  let store = Parser.parse_exn person_doc in
  let ti = TI.create (LT.double ()) store in
  let texts = Store.text_nodes store in
  (* "." (weight's middle text) is viable but not complete *)
  let dot = texts.(6) in
  Alcotest.(check string) "dot text" "." (Store.text store dot);
  Alcotest.(check bool) "viable" true (TI.is_viable ti dot);
  Alcotest.(check bool) "not complete" false (TI.is_complete ti dot);
  (* "Arthur" is rejected *)
  Alcotest.(check bool) "Arthur rejected" false (TI.is_viable ti texts.(0));
  (* values *)
  let weight =
    List.nth (Store.children store (Option.get (Store.first_child store Store.document))) 3
  in
  Alcotest.(check (option (float 1e-9))) "weight value" (Some 78.230)
    (TI.value_of ti weight)

let test_typed_datetime () =
  let store =
    Parser.parse_exn
      "<log><e><t>2004-07-15T08:30:00Z</t></e><e><t>2005-01-01T00:00:00Z</t></e>\
       <e><t>not a date</t></e></log>"
  in
  let ti = TI.create (LT.datetime ()) store in
  ok_or_fail "validate" (TI.validate ti store);
  let spec = LT.datetime () in
  let lo = Option.get (spec.LT.parse "2004-01-01T00:00:00Z") in
  let hi = Option.get (spec.LT.parse "2004-12-31T23:59:59Z") in
  let hits = TI.range ~lo ~hi ti in
  (* the text, its <t> element, and the <e> wrapper whose string value
     is the same timestamp *)
  Alcotest.(check int) "2004 hits" 3 (List.length hits)

let test_typed_semantically_invalid () =
  (* shaped like a dateTime, but not a value of the type: stays viable,
     gets no value entry, and nothing crashes *)
  let store =
    Parser.parse_exn "<log><t>0000-13-99T99:99:99</t><t>2004-07-15T08:30:00Z</t></log>"
  in
  let ti = TI.create (LT.datetime ()) store in
  ok_or_fail "validate" (TI.validate ti store);
  Alcotest.(check int) "only the real timestamp indexed" 2 (TI.entry_count ti);
  let texts = Store.text_nodes store in
  Alcotest.(check bool) "shape-valid node keeps a state" true
    (TI.is_viable ti texts.(0));
  Alcotest.(check bool) "but no value" false (TI.is_complete ti texts.(0));
  (* and updates through it keep working *)
  Store.set_text store texts.(0) "1999-01-01T00:00:00Z";
  TI.update_texts ti store [ texts.(0) ];
  ok_or_fail "validate after repair" (TI.validate ti store);
  Alcotest.(check int) "now indexed" 4 (TI.entry_count ti)

let test_typed_stats () =
  let store = Parser.parse_exn person_doc in
  let ti = TI.create (LT.double ()) store in
  let st = TI.stats ti store in
  (* complete texts: 4, 2, 78, 230 *)
  Alcotest.(check int) "complete texts" 4 st.TI.complete_text_nodes;
  (* non-leaf completes: <age> (42) and <weight> (78.230) *)
  Alcotest.(check int) "complete non-leaves" 2 st.TI.complete_non_leaves;
  Alcotest.(check bool) "viable >= complete" true
    (st.TI.viable_nodes >= st.TI.complete_nodes)

let test_typed_update_moves_value () =
  let store = Parser.parse_exn person_doc in
  let ti = TI.create (LT.double ()) store in
  let texts = Store.text_nodes store in
  (* kilos "78" -> "80": same SCT state, new values everywhere above *)
  Store.set_text store texts.(5) "80";
  TI.update_texts ti store [ texts.(5) ];
  ok_or_fail "validate" (TI.validate ti store);
  Alcotest.(check int) "no hits at 78.230" 0 (List.length (TI.equals ti 78.230));
  Alcotest.(check int) "weight now 80.230" 1 (List.length (TI.equals ti 80.230));
  (* make it non-numeric: states change, entries vanish *)
  Store.set_text store texts.(5) "heavy";
  TI.update_texts ti store [ texts.(5) ];
  ok_or_fail "validate 2" (TI.validate ti store);
  Alcotest.(check int) "no weight value" 0 (List.length (TI.equals ti 80.230));
  (* back to numeric *)
  Store.set_text store texts.(5) "81";
  TI.update_texts ti store [ texts.(5) ];
  ok_or_fail "validate 3" (TI.validate ti store);
  Alcotest.(check int) "weight 81.230" 1 (List.length (TI.equals ti 81.230))

let test_fragment_mode () =
  let store = Parser.parse_exn person_doc in
  let ti = TI.create ~reconstruct:`Fragment (LT.double ()) store in
  ok_or_fail "validate fragment mode" (TI.validate ti store);
  let texts = Store.text_nodes store in
  Store.set_text store texts.(5) "80";
  TI.update_texts ti store [ texts.(5) ];
  ok_or_fail "validate after update" (TI.validate ti store);
  Alcotest.(check int) "weight 80.230" 1 (List.length (TI.equals ti 80.230));
  (* fragment storage costs more than document mode *)
  let doc_mode = TI.create (LT.double ()) store in
  Alcotest.(check bool) "fragment storage >= document storage" true
    (TI.storage_bytes ti >= TI.storage_bytes doc_mode)

(* --- Db bundle with random workloads --- *)

let random_db seed =
  let factor = 0.02 +. (0.01 *. float_of_int (seed mod 3)) in
  let xml = Xvi_workload.Xmark.generate ~seed ~factor () in
  Db.of_xml_exn xml

let test_db_random_update_storm () =
  let db = random_db 11 in
  let store = Db.store db in
  for round = 1 to 5 do
    let updates =
      Xvi_workload.Update_workload.random_text_updates ~seed:(100 + round) store
        ~count:50
    in
    Db.update_texts db updates
  done;
  ok_or_fail "validate after storms" (Db.validate db)

let test_db_delete_insert_cycle () =
  let db = random_db 12 in
  let store = Db.store db in
  let rng = Prng.create 999 in
  (* delete a handful of random elements *)
  for _ = 1 to 8 do
    let candidates = ref [] in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Element && Store.level store n >= 3 then
          candidates := n :: !candidates);
    match !candidates with
    | [] -> ()
    | l -> Db.delete_subtree db (List.nth l (Prng.int rng (List.length l)))
  done;
  ok_or_fail "validate after deletes" (Db.validate db);
  (* insert fragments *)
  let root = Option.get (Store.first_child store Store.document) in
  (match
     Db.insert_xml db ~parent:root
       "<injected><price>123.45</price><note>hello world</note></injected>"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insert: %s" (Parser.error_to_string e));
  ok_or_fail "validate after insert" (Db.validate db);
  Alcotest.(check bool) "price findable" true
    (List.length (Db.lookup_double db (Db.Range.between 123.45 123.45)) >= 1);
  Alcotest.(check bool) "note findable" true
    (List.length (Db.lookup_string db "hello world") >= 1)

let test_db_lookup_equals_scan () =
  (* index lookups must equal a naive scan over string values *)
  let db = random_db 13 in
  let store = Db.store db in
  let probe = [ "Creditcard"; "Yes"; "male"; "nonexistent-value-xyz" ] in
  List.iter
    (fun s ->
      let expected = ref [] in
      Store.iter_pre store (fun n ->
          match Store.kind store n with
          | Store.Element | Store.Text | Store.Attribute | Store.Document ->
              if String.equal (Store.string_value store n) s then
                expected := n :: !expected
          | _ -> ());
      let got = Db.lookup_string db s in
      Alcotest.(check (list int))
        (Printf.sprintf "lookup %S = scan" s)
        (List.sort compare !expected) (List.sort compare got))
    probe

let test_db_range_equals_scan () =
  let db = random_db 14 in
  let store = Db.store db in
  let spec = LT.double () in
  let ranges = [ (10.0, 20.0); (0.0, 1.0); (500.0, 10_000.0) ] in
  List.iter
    (fun (lo, hi) ->
      let expected = ref [] in
      Store.iter_pre store (fun n ->
          match Store.kind store n with
          | Store.Element | Store.Text | Store.Attribute | Store.Document -> (
              let sv = Store.string_value store n in
              let sct = spec.LT.sct in
              if Xvi_core.Sct.is_accepting sct (Xvi_core.Sct.of_string sct sv)
              then
                match spec.LT.parse sv with
                | Some v when v >= lo && v <= hi -> expected := n :: !expected
                | _ -> ())
          | _ -> ());
      let got = Db.lookup_double db (Db.Range.between lo hi) in
      Alcotest.(check (list int))
        (Printf.sprintf "range [%g,%g] = scan" lo hi)
        (List.sort compare !expected) (List.sort compare got))
    ranges

let test_db_boolean_integer_indices () =
  let xml = "<flags><f>true</f><f>false</f><f>1</f><f>maybe</f><n>42</n><n>1.5</n></flags>" in
  let config =
    { Db.Config.default with Db.Config.types = [ LT.boolean (); LT.integer () ] }
  in
  let db = Db.of_xml_exn ~config xml in
  Alcotest.(check int) "true nodes" 4
    (List.length (Db.lookup_typed db "xs:boolean" (Db.Range.between 1.0 1.0)))
  (* "true" text + element, "1" text + element *);
  Alcotest.(check int) "integers" 2
    (List.length (Db.lookup_typed db "xs:integer" (Db.Range.between 42.0 42.0)));
  Alcotest.(check int) "1.5 not an integer" 0
    (List.length (Db.lookup_typed db "xs:integer" (Db.Range.between 1.5 1.5)));
  Alcotest.(check bool) "no double index" true (Db.typed_index db "xs:double" = None)

let base_suites =
    [
      ( "string",
        [
          Alcotest.test_case "lookup basics" `Quick test_string_lookup_basics;
          Alcotest.test_case "attribute lookup" `Quick test_string_attribute_lookup;
          Alcotest.test_case "collision filtering" `Quick test_string_collision_filtering;
          Alcotest.test_case "update maintenance" `Quick test_string_update_maintenance;
          Alcotest.test_case "entries and storage" `Quick test_string_entry_count_and_storage;
        ] );
      ( "typed",
        [
          Alcotest.test_case "basics" `Quick test_typed_basics;
          Alcotest.test_case "states" `Quick test_typed_states;
          Alcotest.test_case "datetime" `Quick test_typed_datetime;
          Alcotest.test_case "semantically invalid values" `Quick
            test_typed_semantically_invalid;
          Alcotest.test_case "stats" `Quick test_typed_stats;
          Alcotest.test_case "update moves values" `Quick test_typed_update_moves_value;
          Alcotest.test_case "fragment mode" `Quick test_fragment_mode;
        ] );
      ( "db",
        [
          Alcotest.test_case "random update storm" `Quick test_db_random_update_storm;
          Alcotest.test_case "delete/insert cycle" `Quick test_db_delete_insert_cycle;
          Alcotest.test_case "lookup equals scan" `Quick test_db_lookup_equals_scan;
          Alcotest.test_case "range equals scan" `Quick test_db_range_equals_scan;
          Alcotest.test_case "boolean/integer indices" `Quick test_db_boolean_integer_indices;
        ] );
    ]

(* --- substring index (the paper's future-work extension) --- *)

module SubI = Xvi_core.Substring_index

let naive_contains store pattern =
  let hit s =
    let m = String.length pattern and n = String.length s in
    let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    m = 0 || go 0
  in
  let acc = ref [] in
  Store.iter_pre store (fun n ->
      match Store.kind store n with
      | Store.Text | Store.Attribute ->
          if hit (Store.text store n) then acc := n :: !acc
      | _ -> ());
  List.sort compare !acc

let naive_element_contains store pattern =
  let hit s =
    let m = String.length pattern and n = String.length s in
    let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    m = 0 || go 0
  in
  let acc = ref [] in
  Store.iter_pre store (fun n ->
      match Store.kind store n with
      | Store.Element | Store.Document ->
          if hit (Store.string_value store n) then acc := n :: !acc
      | _ -> ());
  List.sort compare !acc

let test_substring_basics () =
  let store = Parser.parse_exn person_doc in
  let si = SubI.create store in
  ok_or_fail "validate" (SubI.validate si store);
  List.iter
    (fun pattern ->
      Alcotest.(check (list int))
        (Printf.sprintf "contains %S" pattern)
        (naive_contains store pattern)
        (SubI.contains si store pattern))
    [ "rth"; "Arthur"; "Dent"; "966-09"; "23"; "zz"; "ur"; "." ];
  (* short patterns fall back to a scan, same answers *)
  Alcotest.(check (list int)) "short pattern" (naive_contains store "D")
    (SubI.contains si store "D")

let test_substring_element_contains () =
  let store = Parser.parse_exn person_doc in
  let si = SubI.create store in
  List.iter
    (fun pattern ->
      Alcotest.(check (list int))
        (Printf.sprintf "element_contains %S" pattern)
        (naive_element_contains store pattern)
        (SubI.element_contains si store pattern))
    [
      "Arthur"; "ArthurDent" (* spans first/family *);
      "78.230" (* spans kilos/./grams *); "t1966" (* Dent + birthday *);
      "42" (* decades + "2" *); "absent";
    ]

let test_substring_random_docs () =
  for seed = 1 to 8 do
    let xml = Xvi_workload.Xmark.generate ~seed ~factor:0.005 () in
    let store = Parser.parse_exn xml in
    let si = SubI.create store in
    ok_or_fail "validate" (SubI.validate si store);
    List.iter
      (fun pattern ->
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d contains %S" seed pattern)
          (naive_contains store pattern)
          (SubI.contains si store pattern))
      [ "ship"; "Credit"; "Arthur"; "99"; "xyzzy" ]
  done

let test_substring_maintenance () =
  let db =
    Db.of_xml_exn ~config:{ Db.Config.default with Db.Config.substring = true }
      "<a><b>hello world</b><c>numbers 123</c><d att=\"needle here\"/></a>"
  in
  let store = Db.store db in
  Alcotest.(check int) "needle found" 1
    (List.length (Db.lookup_contains db "needle"));
  (* update removes old grams and adds new ones *)
  let b_text = (Store.text_nodes store).(0) in
  Db.update_text db b_text "goodbye planet";
  ok_or_fail "validate after update" (Db.validate db);
  Alcotest.(check int) "hello gone" 0 (List.length (Db.lookup_contains db "hello"));
  Alcotest.(check int) "planet found" 1
    (List.length (Db.lookup_contains db "planet"));
  (* delete drops postings *)
  let c =
    List.find
      (fun n -> Store.kind store n = Store.Element && Store.name store n = "c")
      (Store.children store (Option.get (Store.first_child store Store.document)))
  in
  Db.delete_subtree db c;
  ok_or_fail "validate after delete" (Db.validate db);
  Alcotest.(check int) "numbers gone" 0
    (List.length (Db.lookup_contains db "numbers"));
  (* insert adds postings *)
  (match
     Db.insert_xml db
       ~parent:(Option.get (Store.first_child store Store.document))
       "<e>freshly inserted content</e>"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insert: %s" (Parser.error_to_string e));
  ok_or_fail "validate after insert" (Db.validate db);
  Alcotest.(check int) "freshly found" 1
    (List.length (Db.lookup_contains db "freshly"))

let test_xpath_contains () =
  let xml =
    "<lib><book><title>The Hitchhiker</title></book>\
     <book><title>Mostly Harmless</title></book>\
     <book><title>Dirk Gently</title></book></lib>"
  in
  let db =
    Db.of_xml_exn ~config:{ Db.Config.default with Db.Config.substring = true } xml
  in
  let store = Db.store db in
  let q = Xvi_xpath.Xpath.parse_exn "//book[contains(title, \"Harm\")]" in
  let naive = Xvi_xpath.Xpath.eval store q in
  let fast = Xvi_xpath.Xpath.eval_indexed db q in
  Alcotest.(check bool) "naive = indexed" true (naive = fast);
  Alcotest.(check int) "one book" 1 (List.length naive);
  (* without the substring index the indexed evaluator falls back *)
  let db2 = Db.of_xml_exn xml in
  let fast2 = Xvi_xpath.Xpath.eval_indexed db2 q in
  Alcotest.(check bool) "fallback agrees" true (naive = fast2)

let extra_suites =
  [
    ( "substring",
      [
        Alcotest.test_case "basics" `Quick test_substring_basics;
        Alcotest.test_case "element contains" `Quick test_substring_element_contains;
        Alcotest.test_case "random docs" `Quick test_substring_random_docs;
        Alcotest.test_case "maintenance" `Quick test_substring_maintenance;
        Alcotest.test_case "xpath contains()" `Quick test_xpath_contains;
      ] );
  ]

(* --- element-name index --- *)

module NI = Xvi_core.Name_index

let test_name_index_basics () =
  let store = Parser.parse_exn person_doc in
  let ni = NI.create store in
  ok_or_fail "validate" (NI.validate ni store);
  Alcotest.(check int) "person" 1 (List.length (NI.nodes ni store "person"));
  Alcotest.(check int) "first" 1 (NI.count ni store "first");
  Alcotest.(check (list int)) "unknown" [] (NI.nodes ni store "nope")

let test_name_index_maintenance () =
  let db = Db.of_xml_exn "<a><b>x</b><b>y</b><c/></a>" in
  let ni = Db.name_index db in
  let store = Db.store db in
  Alcotest.(check int) "two b" 2 (NI.count ni store "b");
  (* lazy deletion *)
  Db.delete_subtree db (List.hd (Db.elements_named db "b"));
  Alcotest.(check int) "one b" 1 (NI.count ni store "b");
  ok_or_fail "validate after delete" (NI.validate ni store);
  (* insert registers fresh elements *)
  let root = Option.get (Store.first_child store Store.document) in
  (match Db.insert_xml db ~parent:root "<b>z</b><d><b>w</b></d>" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insert: %s" (Parser.error_to_string e));
  Alcotest.(check int) "three b" 3 (NI.count ni store "b");
  Alcotest.(check int) "one d" 1 (NI.count ni store "d");
  ok_or_fail "validate after insert" (NI.validate ni store);
  ok_or_fail "db validate" (Db.validate db)

let () =
  Alcotest.run "indices"
    (base_suites @ extra_suites
    @ [
        ( "name-index",
          [
            Alcotest.test_case "basics" `Quick test_name_index_basics;
            Alcotest.test_case "maintenance" `Quick test_name_index_maintenance;
          ] );
      ])

(* xvi-lint over the fixture corpus: every rule has one fixture that
   must fire (with the exact rule ids and line numbers asserted) and
   one that must stay quiet, plus the A0 meta-rule on a reasonless
   allow.  Fixtures live in [lint_fixtures/] as data (never compiled),
   so a fixture deliberately full of violations cannot break the
   build. *)

module Lint = Xvi_lint_lib.Lint

let fixture name = Filename.concat "lint_fixtures" name

(* (rule id, 1-based line) pairs, sorted, so a test failure prints the
   complete delta rather than the first mismatch. *)
let findings_of name =
  match Lint.lint_file ~in_lib:true (fixture name) with
  | Error e -> Alcotest.failf "fixture %s failed to parse: %s" name e
  | Ok fs ->
      List.sort compare
        (List.map (fun f -> (Lint.rule_id f.Lint.rule, f.Lint.line)) fs)

let check name expected () =
  Alcotest.(check (list (pair string int)))
    name (List.sort compare expected) (findings_of name)

let fires name expected = Alcotest.test_case (name ^ " fires") `Quick (check name expected)
let quiet name = Alcotest.test_case (name ^ " quiet") `Quick (check name [])

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          fires "r1_fire.ml" [ ("R1", 4); ("R1", 8) ];
          quiet "r1_quiet.ml";
          fires "r2_fire.ml" [ ("R2", 2); ("R2", 3); ("R2", 4) ];
          quiet "r2_quiet.ml";
          fires "r3_fire.ml" [ ("R3", 2); ("R3", 3) ];
          quiet "r3_quiet.ml";
          fires "r4_fire.ml" [ ("R4", 3) ];
          quiet "r4_quiet.ml";
          fires "r5_fire.ml" [ ("R5", 2) ];
          quiet "r5_quiet.ml";
          fires "r6_fire.ml" [ ("R6", 2); ("R6", 3) ];
          quiet "r6_quiet.ml";
        ] );
      ( "allow",
        [
          fires "allow_reasonless.ml" [ ("A0", 3); ("R2", 3) ];
          Alcotest.test_case "allow carries reason through to_string" `Quick
            (fun () ->
              match Lint.lint_file ~in_lib:true (fixture "r2_fire.ml") with
              | Error e -> Alcotest.failf "parse: %s" e
              | Ok (f :: _) ->
                  let s = Lint.to_string f in
                  Alcotest.(check bool)
                    "rendered finding names its rule" true
                    (String.length s > 0
                    && String.sub s 0 (String.length (fixture "r2_fire.ml"))
                       = fixture "r2_fire.ml")
              | Ok [] -> Alcotest.fail "r2_fire.ml produced no findings");
        ] );
    ]

(* xvi-lint over the fixture corpus: every rule has one fixture that
   must fire (with the exact rule ids and line numbers asserted) and
   one that must stay quiet, plus the A0 meta-rule on a reasonless
   allow.  Fixtures live in [lint_fixtures/] as data (never compiled),
   so a fixture deliberately full of violations cannot break the
   build.  The deep (Typedtree) fixtures under [lint_fixtures/deep/]
   go through [Deep.analyze_sources], which typechecks them in-process
   — they stub the project modules (Bigvec, Engine, Wal, Unix) locally
   so the checker's name-based classification pairs them up exactly
   like the real tree. *)

module Lint = Xvi_lint_lib.Lint
module Deep = Xvi_lint_deep.Deep

let fixture name = Filename.concat "lint_fixtures" name

(* (rule id, 1-based line) pairs, sorted, so a test failure prints the
   complete delta rather than the first mismatch. *)
let findings_of name =
  match Lint.lint_file ~in_lib:true (fixture name) with
  | Error e -> Alcotest.failf "fixture %s failed to parse: %s" name e
  | Ok fs ->
      List.sort compare
        (List.map (fun f -> (Lint.rule_id f.Lint.rule, f.Lint.line)) fs)

let check name expected () =
  Alcotest.(check (list (pair string int)))
    name (List.sort compare expected) (findings_of name)

let fires name expected = Alcotest.test_case (name ^ " fires") `Quick (check name expected)
let quiet name = Alcotest.test_case (name ^ " quiet") `Quick (check name [])

(* -- deep stage ---------------------------------------------------- *)

let deep_fixture name = Filename.concat (fixture "deep") name

let deep_findings name =
  match Deep.analyze_sources [ deep_fixture name ] with
  | Error e -> Alcotest.failf "deep fixture %s failed to typecheck: %s" name e
  | Ok fs -> fs

let deep_check name expected () =
  Alcotest.(check (list (pair string int)))
    name
    (List.sort compare expected)
    (List.sort compare
       (List.map
          (fun f -> (Lint.rule_id f.Lint.rule, f.Lint.line))
          (deep_findings name)))

let deep_fires name expected =
  Alcotest.test_case (name ^ " fires") `Quick (deep_check name expected)

let deep_quiet name =
  Alcotest.test_case (name ^ " quiet") `Quick (deep_check name [])

(* The witness chain is the analysis' evidence: assert its endpoints —
   the entry point it starts from and the primitive-effect site it ends
   at — for one finding per rule. *)
let deep_witness name ~rule ~line ~first ~last =
  Alcotest.test_case
    (Printf.sprintf "%s witness %s:%d" name rule line)
    `Quick
    (fun () ->
      match
        List.find_opt
          (fun f -> Lint.rule_id f.Lint.rule = rule && f.Lint.line = line)
          (deep_findings name)
      with
      | None -> Alcotest.failf "no %s finding at line %d" rule line
      | Some f -> (
          match f.Lint.witness with
          | [] -> Alcotest.fail "finding carries no witness"
          | w ->
              let fn (n, _, _) = n in
              Alcotest.(check string) "chain head" first (fn (List.hd w));
              Alcotest.(check string)
                "chain tail" last
                (fn (List.nth w (List.length w - 1)))))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          fires "r1_fire.ml" [ ("R1", 4); ("R1", 8) ];
          quiet "r1_quiet.ml";
          fires "r2_fire.ml" [ ("R2", 2); ("R2", 3); ("R2", 4) ];
          quiet "r2_quiet.ml";
          fires "r3_fire.ml" [ ("R3", 2); ("R3", 3) ];
          quiet "r3_quiet.ml";
          fires "r4_fire.ml" [ ("R4", 3) ];
          quiet "r4_quiet.ml";
          fires "r5_fire.ml" [ ("R5", 2) ];
          quiet "r5_quiet.ml";
          fires "r6_fire.ml" [ ("R6", 2); ("R6", 3) ];
          quiet "r6_quiet.ml";
        ] );
      ( "allow",
        [
          fires "allow_reasonless.ml" [ ("A0", 3); ("R2", 3) ];
          Alcotest.test_case "allow carries reason through to_string" `Quick
            (fun () ->
              match Lint.lint_file ~in_lib:true (fixture "r2_fire.ml") with
              | Error e -> Alcotest.failf "parse: %s" e
              | Ok (f :: _) ->
                  let s = Lint.to_string f in
                  Alcotest.(check bool)
                    "rendered finding names its rule" true
                    (String.length s > 0
                    && String.sub s 0 (String.length (fixture "r2_fire.ml"))
                       = fixture "r2_fire.ml")
              | Ok [] -> Alcotest.fail "r2_fire.ml produced no findings");
        ] );
      ( "deep rules",
        [
          deep_fires "d1_fire.ml" [ ("D1", 14); ("D1", 17); ("D1", 20) ];
          deep_witness "d1_fire.ml" ~rule:"D1" ~line:17 ~first:"D1_fire.insert"
            ~last:"Bigvec.set";
          deep_quiet "d1_quiet.ml";
          deep_fires "d2_fire.ml" [ ("D2", 22); ("D2", 29) ];
          deep_witness "d2_fire.ml" ~rule:"D2" ~line:22
            ~first:"D2_fire.publish_then_touch" ~last:"Bigvec.set";
          deep_quiet "d2_quiet.ml";
          deep_fires "d3_fire.ml" [ ("D3", 11); ("D3", 17); ("D3", 20) ];
          deep_witness "d3_fire.ml" ~rule:"D3" ~line:11
            ~first:"D3_fire.commit_no_fsync" ~last:"D3_fire.replica_apply";
          deep_quiet "d3_quiet.ml";
          deep_fires "d4_fire.ml" [ ("D4", 15) ];
          deep_witness "d4_fire.ml" ~rule:"D4" ~line:15
            ~first:"D4_fire.Wal.encode" ~last:"D4_fire.Wal.parse_payload";
          deep_quiet "d4_quiet.ml";
          (* a reasoned allow suppresses; a reasonless one is A0 and
             suppresses nothing *)
          deep_fires "d1_allowed.ml" [ ("A0", 15); ("D1", 15) ];
        ] );
      ( "historical shapes",
        [
          deep_fires "hist_flusher_publish.ml" [ ("D1", 20) ];
          deep_fires "hist_cow_publish.ml" [ ("D2", 20) ];
          deep_fires "hist_group_ack.ml" [ ("D3", 14) ];
          deep_fires "hist_wal_tag8.ml" [ ("D4", 28) ];
          deep_witness "hist_wal_tag8.ml" ~rule:"D4" ~line:28
            ~first:"Hist_wal_tag8.Wal.encode"
            ~last:"Hist_wal_tag8.Wal.parse_payload";
        ] );
    ]

(* Bounded slice of the differential oracle + fault-injection harness
   (the open-ended version lives behind the @fuzz alias and the
   `xvi fuzz` subcommand). Everything here must stay well under ten
   seconds so `dune runtest` keeps its edit-compile-test rhythm. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Lexical_types = Xvi_core.Lexical_types
module Oracle = Xvi_check.Oracle
module Runner = Xvi_check.Runner
module Fault = Xvi_check.Fault

let nodes = Alcotest.(list int)

(* --- differential slice -------------------------------------------- *)

let test_differential_slice () =
  match Runner.run ~seed:11 ~docs:8 ~ops_per_doc:60 () with
  | Ok o ->
      Alcotest.(check int) "documents" 8 o.Runner.docs;
      Alcotest.(check int) "operations" 480 o.Runner.ops;
      if o.Runner.checks < 1000 then
        Alcotest.failf "suspiciously few checks: %d" o.Runner.checks
  | Error f -> Alcotest.fail (Runner.render_trace f)

(* --- Db.Range edge cases against both index and oracle ------------- *)

let range_doc =
  "<doc><a>1</a><b>-0</b><c>0</c><d>42</d><e>nan-ish</e><f>  2.5 \
   </f><g>1e2</g><h/></doc>"

let with_range_db f =
  let db = Db.of_xml_exn range_doc in
  f db (Db.store db)

let double_spec = Lexical_types.double ()

let check_range db store msg range =
  let got = Db.lookup_double db range in
  let want = Oracle.lookup_typed store double_spec range in
  Alcotest.(check nodes) msg want got

let test_range_inverted () =
  with_range_db (fun db store ->
      check_range db store "lo > hi matches nothing" (Db.Range.between 43. 42.);
      Alcotest.(check nodes)
        "inverted range is empty" []
        (Db.lookup_double db (Db.Range.between 1. 0.)))

let test_range_nan_bounds () =
  with_range_db (fun db store ->
      List.iter
        (fun (msg, range) ->
          Alcotest.(check nodes) (msg ^ " is empty") [] (Db.lookup_double db range);
          check_range db store (msg ^ " agrees with oracle") range)
        [
          ("nan lower bound", Db.Range.at_least Float.nan);
          ("nan upper bound", Db.Range.at_most Float.nan);
          ("nan both bounds", Db.Range.between Float.nan Float.nan);
          ("nan lower, real upper", Db.Range.between Float.nan 100.);
        ])

let test_range_signed_zero () =
  with_range_db (fun db store ->
      (* -0. and 0. are the same key and the same bound (IEEE equality),
         so "-0" and "0" land in every zero-shaped range together — each
         as a text node and as its enclosing element's string value *)
      let zeros = Db.lookup_double db (Db.Range.between (-0.) 0.) in
      Alcotest.(check int) "four zero-valued nodes" 4 (List.length zeros);
      List.iter
        (fun (msg, range) -> check_range db store msg range)
        [
          ("between -0. 0.", Db.Range.between (-0.) 0.);
          ("between 0. -0.", Db.Range.between 0. (-0.));
          ("at_most -0.", Db.Range.at_most (-0.));
          ("at_least -0.", Db.Range.at_least (-0.));
        ];
      Alcotest.(check nodes)
        "at_most -0. = at_most 0."
        (Db.lookup_double db (Db.Range.at_most 0.))
        (Db.lookup_double db (Db.Range.at_most (-0.))))

let test_range_inclusive_bounds () =
  with_range_db (fun db store ->
      (* <d>42</d>: the text node and the element both value 42 *)
      let hits = Db.lookup_double db (Db.Range.between 42. 42.) in
      Alcotest.(check int) "closed singleton range hits 42" 2 (List.length hits);
      List.iter
        (fun (msg, range) -> check_range db store msg range)
        [
          ("both endpoints included", Db.Range.between 1. 42.);
          ("at_least includes endpoint", Db.Range.at_least 42.);
          ("at_most includes endpoint", Db.Range.at_most 1.);
          ("any", Db.Range.any);
          ("infinite bounds", Db.Range.between Float.neg_infinity Float.infinity);
        ];
      (* 1, -0, 0, 42, 2.5, 1e2 parse; "nan-ish", "", and the elements'
         concatenated values do not all — count what the oracle counts *)
      Alcotest.(check nodes) "any agrees with oracle"
        (Oracle.lookup_typed store double_spec Db.Range.any)
        (Db.lookup_double db Db.Range.any))

(* --- the paper's mixed-content example ----------------------------- *)

let find_text store value =
  let found = ref None in
  Store.iter_pre store (fun n ->
      if
        !found = None
        && Store.kind store n = Store.Text
        && String.equal (Store.text store n) value
      then found := Some n);
  match !found with
  | Some n -> n
  | None -> Alcotest.failf "no text node %S" value

let test_mixed_content_regression () =
  (* Figure 1 of the paper: the string value of <age> interleaves child
     element text and bare text — "4" ^ "2" with an empty <years/> *)
  let db = Db.of_xml_exn "<doc><age><decades>4</decades>2<years/></age></doc>" in
  let store = Db.store db in
  let age = match Oracle.elements_named store "age" with
    | [ n ] -> n
    | l -> Alcotest.failf "expected one <age>, got %d" (List.length l)
  in
  let hits = Db.lookup_string db "42" in
  if not (List.mem age hits) then
    Alcotest.fail "lookup_string \"42\" misses the mixed-content element";
  Alcotest.(check nodes) "string lookup agrees with oracle"
    (Oracle.lookup_string store "42") hits;
  let dhits = Db.lookup_double db (Db.Range.between 42. 42.) in
  if not (List.mem age dhits) then
    Alcotest.fail "lookup_double misses the mixed-content element";
  (* updating the bare text run re-derives the element value: 4^7 = 47 *)
  Db.update_text db (find_text store "2") "7";
  Alcotest.(check nodes) "after update, 47 via index"
    (Oracle.lookup_string store "47") (Db.lookup_string db "47");
  if not (List.mem age (Db.lookup_double db (Db.Range.between 47. 47.))) then
    Alcotest.fail "lookup_double misses the updated mixed-content element";
  Alcotest.(check nodes) "stale 42 gone" [] (Db.lookup_string db "42");
  Alcotest.(check (result unit string)) "indices validate" (Ok ())
    (Db.validate db)

(* --- fault injection ----------------------------------------------- *)

let small_config = { Db.Config.default with Db.Config.types = []; substring = false }

let test_fault_sweep_exhaustive () =
  (* with no SCT tables the snapshot is a few KiB: every truncation
     length and every byte flip fits in the tier-1 budget *)
  let db =
    Db.of_xml_exn ~config:small_config
      "<doc><a k=\"v\">alpha</a><b>42</b><c><d>nested</d> tail</c></doc>"
  in
  match Fault.sweep ~all_offsets:true db with
  | Error m -> Alcotest.fail m
  | Ok r ->
      if r.Fault.truncations < 100 then
        Alcotest.failf "only %d truncation lengths" r.Fault.truncations;
      if r.Fault.flips < 100 then
        Alcotest.failf "only %d byte flips" r.Fault.flips

let test_fault_sweep_default_config () =
  (* the realistic snapshot (double + datetime SCTs, marshalled tables)
     with the truncation sweep sampled down to tier-1 size *)
  let db =
    Db.of_xml_exn "<doc><a ts=\"2009-03-24T12:00:00Z\">1.5</a><b>two</b></doc>"
  in
  match Fault.sweep ~truncations:512 ~flips:256 db with
  | Error m -> Alcotest.fail m
  | Ok r ->
      if r.Fault.truncations < 500 then
        Alcotest.failf "only %d truncation lengths" r.Fault.truncations;
      if r.Fault.flips < 256 then Alcotest.failf "only %d byte flips" r.Fault.flips

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        [
          Alcotest.test_case "random traces vs oracle" `Quick
            test_differential_slice;
        ] );
      ( "range-edge-cases",
        [
          Alcotest.test_case "inverted bounds" `Quick test_range_inverted;
          Alcotest.test_case "NaN bounds" `Quick test_range_nan_bounds;
          Alcotest.test_case "signed zero" `Quick test_range_signed_zero;
          Alcotest.test_case "inclusive bounds" `Quick
            test_range_inclusive_bounds;
        ] );
      ( "mixed-content",
        [
          Alcotest.test_case "age/decades/years" `Quick
            test_mixed_content_regression;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "exhaustive on small snapshot" `Quick
            test_fault_sweep_exhaustive;
          Alcotest.test_case "sampled on default config" `Quick
            test_fault_sweep_default_config;
        ] );
    ]

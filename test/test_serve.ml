(* Serving-layer tests: protocol codec and framing, Engine epoch
   semantics (memory and durable), Session lifecycle, a real
   server/client round trip over a Unix socket, the concurrent-reader
   harness and the multi-session group-commit crash sweep. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Txn = Xvi_txn.Txn
module Engine = Xvi_serve.Engine
module Session = Xvi_serve.Session
module Protocol = Xvi_serve.Protocol
module Server = Xvi_serve.Server
module Client = Xvi_serve.Client
module Range = Xvi_query.Range
module Runner = Xvi_check.Runner
module Fault = Xvi_check.Fault

let small_xml = "<doc><a>alpha</a><b>beta</b><c n=\"7\">gamma</c></doc>"

let nodes = Alcotest.(list int)

let with_dir f =
  let dir = Filename.temp_file "xvi_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e ->
            try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Engine.error_to_string e)

let with_mem_engine ?publish_period xml f =
  let engine =
    ok_exn "open memory engine"
      (Engine.open_ ?publish_period (Engine.Memory (Db.of_xml_exn xml)))
  in
  Fun.protect ~finally:(fun () -> Engine.close engine) (fun () -> f engine)

let texts_of db = Store.text_nodes (Db.store db)

let first_text db =
  let texts = texts_of db in
  if Array.length texts = 0 then Alcotest.fail "no text nodes";
  texts.(0)

(* --- protocol codec ------------------------------------------------ *)

let nasty_strings =
  [
    "";
    "plain";
    "two words";
    "percent % sign";
    "newline\nand\ttab";
    "control \x01\x02 bytes";
    "del \x7f char";
    "trailing space ";
    " leading";
    "utf-8 \xc3\xa9\xe2\x82\xac";
    "%41 looks pre-escaped";
  ]

let test_escape_roundtrip () =
  List.iter
    (fun s ->
      match Protocol.unescape (Protocol.escape s) with
      | Ok s' -> Alcotest.(check string) (Printf.sprintf "escape %S" s) s s'
      | Error m -> Alcotest.failf "unescape (escape %S) failed: %s" s m)
    nasty_strings;
  (* the escaped form must be a single space-free token *)
  List.iter
    (fun s ->
      let e = Protocol.escape s in
      if String.exists (fun c -> c <= ' ' || c = '\x7f') e then
        Alcotest.failf "escape %S left raw separator bytes in %S" s e)
    nasty_strings

let test_unescape_rejects () =
  List.iter
    (fun bad ->
      match Protocol.unescape bad with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "unescape %S = Ok %S, wanted Error" bad v)
    [ "%"; "%4"; "%zz"; "a%G0b" ]

let requests_for_roundtrip =
  [
    Protocol.Hello;
    Protocol.Pin;
    Protocol.Lookup_string "two words";
    Protocol.Lookup_contains "needle\n%";
    Protocol.Lookup_element_contains "";
    Protocol.Lookup_named "entry";
    Protocol.Lookup_typed ("xs:double", None, None);
    Protocol.Lookup_typed ("xs:double", Some (-0.5), None);
    Protocol.Lookup_typed ("xs:dateTime", None, Some 1e12);
    Protocol.Lookup_typed ("t", Some 1.25, Some 3.75);
    Protocol.Value 0;
    Protocol.Begin;
    Protocol.Set (42, "a value with spaces");
    Protocol.Commit;
    Protocol.Commit_deferred;
    Protocol.Abort;
    Protocol.Insert (7, "<a b=\"c\">text &amp; more</a>");
    Protocol.Delete 9;
    Protocol.Stats;
    Protocol.Sync;
    Protocol.Quit;
    Protocol.Shutdown;
    Protocol.Repl_info;
    Protocol.Repl_snapshot 0;
    Protocol.Repl_snapshot 1048576;
    Protocol.Repl_pull { from_lsn = 1; max_bytes = 65536 };
    Protocol.Repl_digest { anchor = 1; lsn = 42 };
    Protocol.Promote;
  ]

let test_request_roundtrip () =
  List.iteri
    (fun i req ->
      let line = Protocol.encode_request req in
      match Protocol.decode_request line with
      | Ok req' ->
          if req <> req' then
            Alcotest.failf "request %d changed across codec: %S" i line
      | Error m -> Alcotest.failf "decode_request %S: %s" line m)
    requests_for_roundtrip

let responses_for_roundtrip =
  [
    Protocol.Ok_;
    Protocol.Epoch { epoch = 3; lsn = 17; commits = 5 };
    Protocol.Nodes [];
    Protocol.Nodes [ 1; 2; 300 ];
    Protocol.Nodes_lsn ([ 4; 5 ], 99);
    Protocol.Nodes_lsn ([], 0);
    Protocol.Value_r "string value\nwith newline";
    Protocol.Lsn 123456;
    Protocol.Stats_r [ ("epoch", "4"); ("note", "two words") ];
    Protocol.Stats_r [];
    Protocol.Conflict_r { node = 12; reason = "lost to txn 3" };
    Protocol.Err "something % broke";
    Protocol.Bye;
    Protocol.Repl_info_r
      {
        role = "follower";
        last_lsn = 40;
        durable_lsn = 40;
        checkpoint_lsn = 12;
        applied_lsn = 38;
        leader_lsn = 41;
      };
    Protocol.Chunk { total = 0; data = "" };
    Protocol.Chunk { total = 9; data = "raw\x00%\nbytes" };
    Protocol.Frames_r { durable_lsn = 17; data = "" };
    Protocol.Frames_r { durable_lsn = 17; data = "\x01\x02 frame % bytes" };
    Protocol.Digest_r None;
    Protocol.Digest_r (Some "d41d8cd98f00b204e9800998ecf8427e");
    Protocol.Snapshot_needed_r 23;
  ]

let test_response_roundtrip () =
  List.iteri
    (fun i resp ->
      let line = Protocol.encode_response resp in
      match Protocol.decode_response line with
      | Ok resp' ->
          if resp <> resp' then
            Alcotest.failf "response %d changed across codec: %S" i line
      | Error m -> Alcotest.failf "decode_response %S: %s" line m)
    responses_for_roundtrip

let test_decode_rejects_garbage () =
  List.iter
    (fun bad ->
      match Protocol.decode_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decode_request %S succeeded" bad)
    [
      "";
      "bogus";
      "set";
      "set notanint v";
      "set 3";
      "value -";
      "lookup-typed xs:double nope _";
      "hello extra";
      "insert 3";
    ];
  List.iter
    (fun bad ->
      match Protocol.decode_response bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decode_response %S succeeded" bad)
    [ ""; "what"; "nodes"; "nodes two"; "epoch 1 2"; "lsn x" ]

let test_framing () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let payloads = [ "hello"; ""; "with\nnewline"; String.make 4096 'x' ] in
      List.iter (fun p -> Protocol.write_frame w p) payloads;
      List.iter
        (fun p ->
          match Protocol.read_frame r with
          | Ok got -> Alcotest.(check string) "frame payload" p got
          | Error `Closed -> Alcotest.fail "premature close"
          | Error (`Malformed m) -> Alcotest.failf "malformed: %s" m)
        payloads;
      Unix.close w;
      (match Protocol.read_frame r with
      | Error `Closed -> ()
      | Ok p -> Alcotest.failf "read %S after close" p
      | Error (`Malformed m) -> Alcotest.failf "malformed at EOF: %s" m))

let test_framing_malformed () =
  let check_bad raw =
    let r, w = Unix.pipe () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        try Unix.close w with Unix.Unix_error _ -> ())
      (fun () ->
        let n = Unix.write_substring w raw 0 (String.length raw) in
        Alcotest.(check int) "wrote all" (String.length raw) n;
        Unix.close w;
        match Protocol.read_frame r with
        | Error (`Malformed _) -> ()
        | Error `Closed -> Alcotest.failf "%S read as clean close" raw
        | Ok p -> Alcotest.failf "%S read as frame %S" raw p)
  in
  check_bad "notalength\npayload";
  check_bad "-3\nxxx";
  (* a length beyond [max_frame] must be refused before allocation *)
  check_bad (string_of_int (Protocol.max_frame + 1) ^ "\n");
  (* truncated payload: length promises more bytes than arrive *)
  check_bad "10\nshort"

(* --- protocol codec properties ------------------------------------- *)

(* Arbitrary byte strings — empty, '%', separators, control bytes,
   non-ASCII — everything the escaper must make wire-safe. *)
let gen_bytes =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 48))

(* Finite floats that [%.17g] renders exactly; NaN is excluded because
   structural equality on it is false, not because the codec loses it. *)
let gen_float =
  QCheck2.Gen.(
    map
      (fun (m, e) -> Float.ldexp (float_of_int m) e)
      (pair (int_range (-1_000_000) 1_000_000) (int_range (-40) 40)))

let gen_nat = QCheck2.Gen.int_bound 1_000_000
let gen_hex = QCheck2.Gen.map Digest.to_hex (QCheck2.Gen.map Digest.string gen_bytes)

let gen_request =
  let open QCheck2.Gen in
  let bytes = gen_bytes and fo = option gen_float in
  oneof
    [
      return Protocol.Hello;
      return Protocol.Pin;
      map (fun s -> Protocol.Lookup_string s) bytes;
      map (fun s -> Protocol.Lookup_contains s) bytes;
      map (fun s -> Protocol.Lookup_element_contains s) bytes;
      map (fun s -> Protocol.Lookup_named s) bytes;
      map
        (fun ((t, lo), hi) -> Protocol.Lookup_typed (t, lo, hi))
        (pair (pair bytes fo) fo);
      map (fun n -> Protocol.Value n) gen_nat;
      return Protocol.Begin;
      map (fun (n, s) -> Protocol.Set (n, s)) (pair gen_nat bytes);
      return Protocol.Commit;
      return Protocol.Commit_deferred;
      return Protocol.Abort;
      map (fun (n, s) -> Protocol.Insert (n, s)) (pair gen_nat bytes);
      map (fun n -> Protocol.Delete n) gen_nat;
      return Protocol.Stats;
      return Protocol.Sync;
      return Protocol.Quit;
      return Protocol.Shutdown;
      return Protocol.Repl_info;
      map (fun n -> Protocol.Repl_snapshot n) gen_nat;
      map
        (fun (from_lsn, max_bytes) -> Protocol.Repl_pull { from_lsn; max_bytes })
        (pair gen_nat gen_nat);
      map
        (fun (anchor, lsn) -> Protocol.Repl_digest { anchor; lsn })
        (pair gen_nat gen_nat);
      return Protocol.Promote;
    ]

let gen_response =
  let open QCheck2.Gen in
  let bytes = gen_bytes in
  let ids = list_size (int_bound 8) gen_nat in
  oneof
    [
      return Protocol.Ok_;
      map
        (fun ((epoch, lsn), commits) -> Protocol.Epoch { epoch; lsn; commits })
        (pair (pair gen_nat gen_nat) gen_nat);
      map (fun l -> Protocol.Nodes l) ids;
      map (fun (l, lsn) -> Protocol.Nodes_lsn (l, lsn)) (pair ids gen_nat);
      map (fun s -> Protocol.Value_r s) bytes;
      map (fun n -> Protocol.Lsn n) gen_nat;
      (* keys are escaped like any token, so arbitrary bytes are fair *)
      map
        (fun kvs -> Protocol.Stats_r kvs)
        (list_size (int_bound 6) (pair bytes bytes));
      map
        (fun (node, reason) -> Protocol.Conflict_r { node; reason })
        (pair gen_nat bytes);
      map (fun m -> Protocol.Err m) bytes;
      return Protocol.Bye;
      map
        (fun
          (((role, last_lsn), (durable_lsn, checkpoint_lsn)),
           (applied_lsn, leader_lsn))
        ->
          Protocol.Repl_info_r
            {
              role;
              last_lsn;
              durable_lsn;
              checkpoint_lsn;
              applied_lsn;
              leader_lsn;
            })
        (pair
           (pair (pair bytes gen_nat) (pair gen_nat gen_nat))
           (pair gen_nat gen_nat));
      map
        (fun (total, data) -> Protocol.Chunk { total; data })
        (pair gen_nat bytes);
      map
        (fun (durable_lsn, data) -> Protocol.Frames_r { durable_lsn; data })
        (pair gen_nat bytes);
      (* hex digests only: the wire spells [None] as the token "_", so a
         Some-digest must never itself be that token — real chain
         digests are 32 hex chars and cannot collide with it *)
      map (fun h -> Protocol.Digest_r (Some h)) gen_hex;
      return (Protocol.Digest_r None);
      map (fun n -> Protocol.Snapshot_needed_r n) gen_nat;
    ]

let prop_escape_roundtrip =
  QCheck2.Test.make ~name:"unescape (escape s) = s" ~count:2000 gen_bytes
    (fun s ->
      match Protocol.unescape (Protocol.escape s) with
      | Ok s' -> String.equal s s'
      | Error _ -> false)

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"decode (encode request) = request" ~count:2000
    gen_request (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"decode (encode response) = response" ~count:2000
    gen_response (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok resp' -> resp = resp'
      | Error _ -> false)

(* --- engine: memory ------------------------------------------------ *)

let test_engine_pin_immutable () =
  with_mem_engine small_xml (fun engine ->
      let pin0 = Engine.pin engine in
      let t0 = first_text pin0.Engine.db in
      let lsn =
        ok_exn "update" (Engine.update_texts engine [ (t0, "replaced") ])
      in
      let pin1 = Engine.pin engine in
      (* the old pin still answers from its own epoch. lookup_string
         matches by XDM string value, so the text node's parent element
         matches too — assert membership, not the exact hit list *)
      if not (List.mem t0 (Db.lookup_string pin0.Engine.db "alpha")) then
        Alcotest.fail "old epoch lost alpha";
      Alcotest.(check nodes) "old epoch has no replaced" []
        (Db.lookup_string pin0.Engine.db "replaced");
      (* the new pin sees the commit (publish_period defaults to 0) *)
      if not (List.mem t0 (Db.lookup_string pin1.Engine.db "replaced")) then
        Alcotest.fail "new epoch missing the committed value";
      if pin1.Engine.epoch <= pin0.Engine.epoch then
        Alcotest.failf "epoch did not advance: %d -> %d" pin0.Engine.epoch
          pin1.Engine.epoch;
      Alcotest.(check int) "commit counted" (pin0.Engine.commits + 1)
        pin1.Engine.commits;
      if pin1.Engine.lsn < lsn then
        Alcotest.failf "pin lsn %d below committed lsn %d" pin1.Engine.lsn lsn)

let test_engine_conflict () =
  with_mem_engine small_xml (fun engine ->
      let t0 = first_text (Engine.snapshot engine) in
      let tx1 = Engine.begin_ engine in
      let tx2 = Engine.begin_ engine in
      (match Txn.update_text tx1 t0 "first" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "stage tx1 refused");
      (match Txn.update_text tx2 t0 "second" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "stage tx2 refused");
      ignore (ok_exn "first committer" (Engine.submit engine tx1) : int);
      (match Engine.submit engine tx2 with
      | Error (Engine.Conflict _) -> ()
      | Error e ->
          Alcotest.failf "wanted Conflict, got %s" (Engine.error_to_string e)
      | Ok _ -> Alcotest.fail "second committer won");
      (* the loser's value never became visible *)
      let db = Engine.snapshot engine in
      if not (List.mem t0 (Db.lookup_string db "first")) then
        Alcotest.fail "winner's value missing";
      Alcotest.(check nodes) "loser's value invisible" []
        (Db.lookup_string db "second"))

let test_engine_empty_commit () =
  with_mem_engine small_xml (fun engine ->
      let before = Engine.stats engine in
      let tx = Engine.begin_ engine in
      let lsn = ok_exn "empty submit" (Engine.submit engine tx) in
      let after = Engine.stats engine in
      Alcotest.(check int) "no LSN consumed" before.Engine.last_lsn lsn;
      Alcotest.(check int) "no commit counted" before.Engine.commits
        after.Engine.commits)

let test_engine_invalid_target () =
  with_mem_engine small_xml (fun engine ->
      let elem =
        List.hd (Db.elements_named (Engine.snapshot engine) "a")
      in
      (match Engine.update_texts engine [ (elem, "x") ] with
      | Error (Engine.Invalid _) -> ()
      | Error e ->
          Alcotest.failf "wanted Invalid, got %s" (Engine.error_to_string e)
      | Ok _ -> Alcotest.fail "element accepted as text target");
      match Engine.insert_xml engine ~parent:elem "<open>" with
      | Error (Engine.Parse _) -> ()
      | Error e ->
          Alcotest.failf "wanted Parse, got %s" (Engine.error_to_string e)
      | Ok _ -> Alcotest.fail "unbalanced fragment accepted)")

let test_engine_structural () =
  with_mem_engine small_xml (fun engine ->
      let elem = List.hd (Db.elements_named (Engine.snapshot engine) "b") in
      let roots, _lsn =
        ok_exn "insert" (Engine.insert_xml engine ~parent:elem "<d>delta</d>")
      in
      if roots = [] then Alcotest.fail "insert returned no roots";
      let db1 = Engine.snapshot engine in
      Alcotest.(check int) "inserted element findable" 1
        (List.length (Db.elements_named db1 "d"));
      let delta_hits = Db.lookup_string db1 "delta" in
      if delta_hits = [] then Alcotest.fail "inserted text not indexed";
      ignore
        (ok_exn "delete" (Engine.delete_subtree engine (List.hd roots)) : int);
      let db2 = Engine.snapshot engine in
      Alcotest.(check nodes) "deleted subtree gone" []
        (Db.lookup_string db2 "delta");
      (* the pre-delete epoch still holds it *)
      Alcotest.(check nodes) "old epoch unaffected" delta_hits
        (Db.lookup_string db1 "delta"))

let test_engine_closed () =
  let engine =
    ok_exn "open" (Engine.open_ (Engine.Memory (Db.of_xml_exn small_xml)))
  in
  let t0 = first_text (Engine.snapshot engine) in
  Engine.close engine;
  Engine.close engine;
  (* idempotent *)
  match Engine.update_texts engine [ (t0, "ghost") ] with
  | Error Engine.Closed -> ()
  | Error e -> Alcotest.failf "wanted Closed, got %s" (Engine.error_to_string e)
  | Ok _ -> Alcotest.fail "write accepted after close"

(* --- engine: durable ----------------------------------------------- *)

let test_engine_durable_roundtrip () =
  with_dir (fun root ->
      let dir = Filename.concat root "store" in
      let engine =
        ok_exn "init"
          (Engine.init ~dir (Db.of_xml_exn small_xml))
      in
      let t0 = first_text (Engine.snapshot engine) in
      ignore (ok_exn "update" (Engine.update_texts engine [ (t0, "durable") ]) : int);
      (* a second init without force must refuse the populated dir *)
      (match Engine.init ~dir (Db.of_xml_exn small_xml) with
      | Error (Engine.Invalid _) -> ()
      | Error e ->
          Alcotest.failf "wanted Invalid, got %s" (Engine.error_to_string e)
      | Ok t ->
          Engine.close t;
          Alcotest.fail "init overwrote an existing durable dir");
      Engine.close engine;
      let engine2 = ok_exn "reopen" (Engine.open_ (Engine.Dir dir)) in
      Fun.protect
        ~finally:(fun () -> Engine.close engine2)
        (fun () ->
          Alcotest.(check bool) "durable" true (Engine.is_durable engine2);
          Alcotest.(check (option string)) "dir" (Some dir) (Engine.dir engine2);
          if Engine.last_replay engine2 = None then
            Alcotest.fail "reopen reported no replay";
          if
            not
              (List.mem t0 (Db.lookup_string (Engine.snapshot engine2) "durable"))
          then Alcotest.fail "recovered commit not visible";
          (* checkpoint folds the log into the snapshot *)
          let wal_bytes () =
            match (Engine.stats engine2).Engine.durable with
            | Some d -> d.Xvi_wal.Durable.wal_bytes
            | None -> Alcotest.fail "durable stats missing"
          in
          ignore
            (ok_exn "post-reopen update"
               (Engine.update_texts engine2 [ (t0, "again" ) ]) : int);
          let before = wal_bytes () in
          ok_exn "checkpoint" (Engine.checkpoint engine2);
          if wal_bytes () >= before then
            Alcotest.failf "checkpoint did not truncate: %d -> %d" before
              (wal_bytes ())))

let test_engine_memory_checkpoint_invalid () =
  with_mem_engine small_xml (fun engine ->
      match Engine.checkpoint engine with
      | Error (Engine.Invalid _) -> ()
      | Error e ->
          Alcotest.failf "wanted Invalid, got %s" (Engine.error_to_string e)
      | Ok () -> Alcotest.fail "memory engine accepted checkpoint")

(* --- sessions ------------------------------------------------------ *)

let test_session_lifecycle () =
  with_mem_engine small_xml (fun engine ->
      let s = Session.create engine in
      Fun.protect
        ~finally:(fun () -> Session.close s)
        (fun () ->
          let db = Session.db s in
          Alcotest.(check nodes) "reads answer from the pin"
            (Db.lookup_string db "beta")
            (Session.lookup_string s "beta");
          let t0 = first_text db in
          (match Session.stage s t0 "early" with
          | Error (Engine.Invalid _) -> ()
          | _ -> Alcotest.fail "stage without begin accepted");
          (match Session.commit s with
          | Error (Engine.Invalid _) -> ()
          | _ -> Alcotest.fail "commit without begin accepted");
          ok_exn "begin" (Session.begin_ s);
          Alcotest.(check bool) "in_txn" true (Session.in_txn s);
          (match Session.begin_ s with
          | Error (Engine.Invalid _) -> ()
          | _ -> Alcotest.fail "double begin accepted");
          ok_exn "stage" (Session.stage s t0 "committed-by-session");
          (* structural ops are single-op transactions *)
          (match Session.insert_xml s ~parent:t0 "<x/>" with
          | Error (Engine.Invalid _) -> ()
          | _ -> Alcotest.fail "insert inside open txn accepted");
          let lsn = ok_exn "commit" (Session.commit ~durable:true s) in
          if lsn < 0 then Alcotest.failf "bad lsn %d" lsn;
          Alcotest.(check bool) "txn closed by commit" false (Session.in_txn s);
          (* read-your-writes: commit repinned the session *)
          if not (List.mem t0 (Session.lookup_string s "committed-by-session"))
          then Alcotest.fail "session does not see its own write";
          (match Session.string_value s t0 with
          | Ok v -> Alcotest.(check string) "string_value" "committed-by-session" v
          | Error e -> Alcotest.failf "string_value: %s" (Engine.error_to_string e));
          (match Session.string_value s 999_999 with
          | Error (Engine.Invalid _) -> ()
          | _ -> Alcotest.fail "out-of-range node accepted");
          match Session.lookup_typed s "xs:no-such-type" Range.any with
          | Error (Engine.Read _) -> ()
          | Error e ->
              Alcotest.failf "wanted Read error, got %s"
                (Engine.error_to_string e)
          | Ok _ -> Alcotest.fail "unknown type accepted"))

let test_session_abort_and_conflict () =
  with_mem_engine small_xml (fun engine ->
      let s1 = Session.create engine and s2 = Session.create engine in
      Fun.protect
        ~finally:(fun () ->
          Session.close s1;
          Session.close s2)
        (fun () ->
          let t0 = first_text (Session.db s1) in
          (* abort drops the staged write *)
          ok_exn "begin s1" (Session.begin_ s1);
          ok_exn "stage s1" (Session.stage s1 t0 "aborted");
          Session.abort s1;
          Alcotest.(check bool) "txn gone" false (Session.in_txn s1);
          ignore (Session.refresh s1 : Engine.pinned);
          Alcotest.(check nodes) "aborted write invisible" []
            (Session.lookup_string s1 "aborted");
          (* two sessions racing for one node: first committer wins *)
          ok_exn "begin s1" (Session.begin_ s1);
          ok_exn "begin s2" (Session.begin_ s2);
          ok_exn "stage s1" (Session.stage s1 t0 "winner");
          ok_exn "stage s2" (Session.stage s2 t0 "loser");
          ignore (ok_exn "commit s1" (Session.commit s1) : int);
          (match Session.commit s2 with
          | Error (Engine.Conflict _) -> ()
          | Error e ->
              Alcotest.failf "wanted Conflict, got %s"
                (Engine.error_to_string e)
          | Ok _ -> Alcotest.fail "second committer won");
          ignore (Session.refresh s2 : Engine.pinned);
          if not (List.mem t0 (Session.lookup_string s2 "winner")) then
            Alcotest.fail "winner not visible to loser after refresh"))

(* --- server and client over a real socket -------------------------- *)

(* Every socket test gets its own fresh directory for its socket path
   (AF_UNIX paths are length-limited to ~107 bytes, so mkdtemp under
   the system temp dir keeps them short), and the test asserts the
   server left it empty — a leaked socket file is a failure, not
   something the next test silently trips over. *)
let with_socket_dir f =
  let dir = Filename.temp_file "xvi-sock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e ->
            try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir (Filename.concat dir "xvi.sock"))

let assert_socket_dir_clean dir =
  Alcotest.(check (list string))
    "server unlinked its socket; directory left clean" []
    (Array.to_list (Sys.readdir dir))

let with_server xml f =
  with_mem_engine xml (fun engine ->
      with_socket_dir (fun dir socket ->
          let server =
            match Server.create ~engine ~socket () with
            | Ok s -> s
            | Error m -> Alcotest.failf "server create: %s" m
          in
          let dom = Domain.spawn (fun () -> Server.run server) in
          Fun.protect
            ~finally:(fun () ->
              Server.request_stop server;
              Domain.join dom)
            (fun () -> f engine socket);
          assert_socket_dir_clean dir))

let connect_exn socket =
  match Client.connect ~socket () with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let cli what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let test_server_roundtrip () =
  with_server small_xml (fun engine socket ->
      let c = connect_exn socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let epoch0, _lsn0, commits0 = cli "hello" (Client.hello c) in
          let db = Engine.snapshot engine in
          let t0 = first_text db in
          (* reads over the wire match direct reads on the snapshot *)
          Alcotest.(check nodes) "lookup-string"
            (Db.lookup_string db "alpha")
            (cli "lookup" (Client.lookup_string c "alpha"));
          Alcotest.(check nodes) "lookup-named"
            (Db.elements_named db "b")
            (cli "named" (Client.lookup_named c "b"));
          Alcotest.(check string) "value" "alpha"
            (cli "value" (Client.value c t0));
          (match Client.value c 999_999 with
          | Error _ -> ()
          | Ok v -> Alcotest.failf "bogus node answered %S" v);
          (* a write round trip: begin / set / commit, then repin *)
          cli "begin" (Client.begin_ c);
          cli "set" (Client.set c t0 "served value");
          let lsn = cli "commit" (Client.commit c) in
          if lsn < 0 then Alcotest.failf "bad lsn %d" lsn;
          let epoch1, _, commits1 = cli "pin" (Client.pin c) in
          if epoch1 <= epoch0 then
            Alcotest.failf "epoch did not advance over the wire: %d -> %d"
              epoch0 epoch1;
          Alcotest.(check int) "one more commit" (commits0 + 1) commits1;
          if
            not
              (List.mem t0 (cli "lookup2" (Client.lookup_string c "served value")))
          then Alcotest.fail "committed value not visible over the wire";
          (* typed lookup with open bounds *)
          Alcotest.(check nodes) "typed"
            (Db.lookup_typed db "xs:double" Range.any)
            (cli "typed" (Client.lookup_typed c "xs:double" None None));
          (* structural ops *)
          let parent = List.hd (Db.elements_named db "c") in
          let roots, _ =
            cli "insert" (Client.insert c ~parent "<z>zeta</z>")
          in
          if roots = [] then Alcotest.fail "insert returned no roots";
          if cli "find zeta" (Client.lookup_string c "zeta") = [] then
            Alcotest.fail "inserted text not served";
          ignore (cli "delete" (Client.delete c (List.hd roots)) : int);
          ignore (cli "pin" (Client.pin c) : int * int * int);
          Alcotest.(check nodes) "deleted over the wire" []
            (cli "find gone" (Client.lookup_string c "zeta"));
          (* stats and sync *)
          let st = cli "stats" (Client.stats c) in
          Alcotest.(check (option string)) "memory engine stats" (Some "no")
            (List.assoc_opt "durable" st);
          if List.assoc_opt "commits" st = None then
            Alcotest.fail "stats missing commits";
          cli "sync" (Client.sync c)))

let test_server_conflict_and_quit () =
  with_server small_xml (fun engine socket ->
      let c1 = connect_exn socket in
      let c2 = connect_exn socket in
      Fun.protect
        ~finally:(fun () ->
          Client.close c1;
          Client.close c2)
        (fun () ->
          let t0 = first_text (Engine.snapshot engine) in
          cli "begin c1" (Client.begin_ c1);
          cli "begin c2" (Client.begin_ c2);
          cli "set c1" (Client.set c1 t0 "c1 wins");
          cli "set c2" (Client.set c2 t0 "c2 loses");
          ignore (cli "commit c1" (Client.commit c1) : int);
          (match Client.commit c2 with
          | Error _ -> ()
          | Ok lsn -> Alcotest.failf "conflicting commit acked at lsn %d" lsn);
          cli "abort c2" (Client.abort c2);
          (* both connections keep serving after the conflict; c2 must
             repin — its session still reads its pre-conflict epoch *)
          ignore (cli "pin c2" (Client.pin c2) : int * int * int);
          if not (List.mem t0 (cli "c2 reread" (Client.lookup_string c2 "c1 wins")))
          then Alcotest.fail "c2 cannot see the winner after repinning";
          cli "quit c1" (Client.quit c1)))

let test_server_shutdown_request () =
  with_mem_engine small_xml (fun engine ->
      with_socket_dir (fun dir socket ->
          let server =
            match Server.create ~engine ~socket () with
            | Ok s -> s
            | Error m -> Alcotest.failf "server create: %s" m
          in
          let dom = Domain.spawn (fun () -> Server.run server) in
          let c = connect_exn socket in
          cli "shutdown" (Client.shutdown c);
          (* run must return on its own — no request_stop from this side *)
          Domain.join dom;
          Alcotest.(check bool) "socket file removed" false
            (Sys.file_exists socket);
          assert_socket_dir_clean dir))

(* --- the concurrency harness and the serve crash sweep ------------- *)

let test_concurrent_readers () =
  match Runner.run_concurrent ~seed:7 ~readers:2 ~commits:8 () with
  | Ok o ->
      Alcotest.(check int) "readers" 2 o.Runner.readers;
      Alcotest.(check int) "commits" 8 o.Runner.commits;
      if o.Runner.reads < 2 then
        Alcotest.failf "suspiciously few cross-checked reads: %d"
          o.Runner.reads;
      if o.Runner.epochs < 1 then Alcotest.fail "no epochs observed"
  | Error m -> Alcotest.fail m

let qcheck_concurrent =
  QCheck.Test.make ~count:2 ~name:"concurrent readers bit-identical"
    QCheck.(make Gen.(int_bound 1000))
    (fun seed ->
      match Runner.run_concurrent ~seed ~readers:2 ~commits:6 () with
      | Ok o -> o.Runner.reads > 0
      | Error m -> QCheck.Test.fail_report m)

let test_serve_sweep () =
  let db = Db.of_xml_exn small_xml in
  let texts = texts_of db in
  let t i = texts.(i) in
  let batches =
    [
      [ (t 0, "round1-a") ];
      [ (t 1, "round1-b") ];
      [ (t 2, "round1-c") ];
      [ (t 0, "round2-a"); (t 1, "round2-b") ];
      [ (t 2, "round2-c") ];
      [ (t 0, "round3-a") ];
    ]
  in
  match Fault.serve_sweep ~crash_points:60 ~sessions:3 db batches with
  | Ok r ->
      Alcotest.(check int) "commits" 6 r.Fault.serve_commits;
      Alcotest.(check int) "sessions" 3 r.Fault.sessions;
      (* six batches over three texts pack into three disjoint rounds *)
      Alcotest.(check int) "shared syncs" 3 r.Fault.syncs;
      if r.Fault.serve_crash_points < 10 then
        Alcotest.failf "suspiciously few crash points: %d"
          r.Fault.serve_crash_points
  | Error m -> Alcotest.fail m

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "escape round trip" `Quick test_escape_roundtrip;
          Alcotest.test_case "unescape rejects" `Quick test_unescape_rejects;
          Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick
            test_decode_rejects_garbage;
          Alcotest.test_case "framing" `Quick test_framing;
          Alcotest.test_case "framing rejects malformed" `Quick
            test_framing_malformed;
          QCheck_alcotest.to_alcotest prop_escape_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pins are immutable epochs" `Quick
            test_engine_pin_immutable;
          Alcotest.test_case "first committer wins" `Quick test_engine_conflict;
          Alcotest.test_case "empty commit is a no-op" `Quick
            test_engine_empty_commit;
          Alcotest.test_case "invalid targets rejected" `Quick
            test_engine_invalid_target;
          Alcotest.test_case "insert and delete publish" `Quick
            test_engine_structural;
          Alcotest.test_case "closed engine refuses writes" `Quick
            test_engine_closed;
          Alcotest.test_case "durable init, reopen, checkpoint" `Quick
            test_engine_durable_roundtrip;
          Alcotest.test_case "memory checkpoint invalid" `Quick
            test_engine_memory_checkpoint_invalid;
        ] );
      ( "session",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "abort and conflict" `Quick
            test_session_abort_and_conflict;
        ] );
      ( "server",
        [
          Alcotest.test_case "socket round trip" `Quick test_server_roundtrip;
          Alcotest.test_case "conflict across connections" `Quick
            test_server_conflict_and_quit;
          Alcotest.test_case "shutdown request" `Quick
            test_server_shutdown_request;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "readers race the writer" `Quick
            test_concurrent_readers;
          QCheck_alcotest.to_alcotest qcheck_concurrent;
        ] );
      ( "crash sweep",
        [ Alcotest.test_case "group commit across sessions" `Quick test_serve_sweep ] );
    ]

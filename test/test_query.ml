(* The query layer's streaming merges at their edges: empty cursors,
   hash-bucket false positives, tombstoned Within scopes, Not over the
   whole document, and document-order stability of Or merges once
   structural inserts make node-id order diverge from document order.
   Each Db-level answer is cross-checked against the index-free oracle
   where one exists. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Ir = Db.Ir
module Cursor = Xvi_query.Cursor
module Oracle = Xvi_check.Oracle
module Prng = Xvi_util.Prng

let doc =
  "<lib><shelf id=\"s1\"><book><title>Dune</title><price>42</price></book>\
   <book><title>VALIS</title><price>7.5</price></book></shelf>\
   <shelf id=\"s2\"><book><title>Dune</title><price>11</price></book>\
   <note>empty shelf soon</note></shelf></lib>"

let mkdb ?config () = Db.of_xml_exn ?config doc

(* --- cursor primitives --- *)

let drain c = Cursor.to_list c

let test_empty_cursors () =
  Alcotest.(check (list int)) "empty" [] (drain Cursor.empty);
  Alcotest.(check (list int)) "union []" [] (drain (Cursor.union []));
  Alcotest.(check (list int)) "inter of empties" []
    (drain (Cursor.inter [ Cursor.empty; Cursor.empty ]));
  Alcotest.(check (list int)) "inter with one empty input" []
    (drain
       (Cursor.inter [ Cursor.of_sorted_list [ 1; 2; 3 ]; Cursor.empty ]));
  Alcotest.(check (list int)) "union absorbs empties" [ 1; 2; 3 ]
    (drain
       (Cursor.union
          [ Cursor.empty; Cursor.of_sorted_list [ 1; 2; 3 ]; Cursor.empty ]));
  (* a drained cursor stays drained: None is sticky *)
  let c = Cursor.of_sorted_list [ 7 ] in
  Alcotest.(check (option int)) "first" (Some 7) (c ());
  Alcotest.(check (option int)) "exhausted" None (c ());
  Alcotest.(check (option int)) "sticky" None (c ())

let test_merge_dedup () =
  (* overlapping inputs and duplicate entries merge to one strictly
     ascending stream *)
  Alcotest.(check (list int)) "union dedups" [ 1; 2; 3; 4; 5 ]
    (drain
       (Cursor.union
          [
            Cursor.of_sorted_list [ 1; 2; 2; 4 ];
            Cursor.of_sorted_list [ 2; 3; 4; 5 ];
          ]));
  Alcotest.(check (list int)) "inter leapfrogs" [ 2; 9 ]
    (drain
       (Cursor.inter
          [
            Cursor.of_sorted_list [ 2; 4; 9 ];
            Cursor.of_sorted_list [ 1; 2; 5; 9; 12 ];
            Cursor.of_sorted_list [ 0; 2; 3; 9 ];
          ]))

(* --- hash-bucket false positives --- *)

let test_collision_no_false_positives () =
  (* engineered same-hash strings in one document: the equality cursor
     must filter the shared bucket down to exact matches, and a
     disjunction over both must not duplicate any node even though both
     branches walk the same bucket *)
  let rng = Prng.create 99 in
  let tg = Xvi_workload.Text_gen.create rng in
  let urls = Xvi_workload.Text_gen.colliding_urls tg 3 in
  let a = List.nth urls 0 and b = List.nth urls 1 in
  Alcotest.(check bool) "hashes collide" true
    (Xvi_core.Hash.equal (Xvi_core.Hash.hash a) (Xvi_core.Hash.hash b));
  let xml =
    "<d>"
    ^ String.concat ""
        (List.map (fun u -> "<u>" ^ u ^ "</u>") (urls @ [ a ]))
    ^ "</d>"
  in
  let db = Db.of_xml_exn xml in
  let store = Db.store db in
  Alcotest.(check (list int)) "eq a = oracle"
    (Oracle.lookup_string store a)
    (Db.lookup_string db a);
  (* a appears twice: 2 text nodes + 2 <u> elements *)
  Alcotest.(check int) "only exact a matches" 4
    (List.length (Db.lookup_string db a));
  let both = Db.query db (Ir.disj [ Ir.string_eq a; Ir.string_eq b ]) in
  Alcotest.(check (list int)) "or = oracle"
    (Oracle.eval_ir store (Ir.disj [ Ir.string_eq a; Ir.string_eq b ]))
    both;
  let sorted_nodup l =
    let rec go = function
      | x :: (y :: _ as rest) -> x < y && go rest
      | _ -> true
    in
    go l
  in
  Alcotest.(check bool) "no duplicates in the merged stream" true
    (sorted_nodup (Db.query_ids db (Ir.disj [ Ir.string_eq a; Ir.string_eq b ])));
  (* distinct colliding values conjoin to nothing *)
  Alcotest.(check (list int)) "and of distinct values" []
    (Db.query db (Ir.conj [ Ir.string_eq a; Ir.string_eq b ]))

(* --- Within over a tombstoned scope --- *)

let test_within_tombstoned_scope () =
  let db = mkdb () in
  let store = Db.store db in
  let shelf2 = List.nth (Db.elements_named db "shelf") 1 in
  let alive = Db.lookup_string_within db ~scope:shelf2 "Dune" in
  Alcotest.(check int) "one Dune on shelf 2" 2 (List.length alive)
  (* the title element and its text node *);
  Db.delete_subtree db shelf2;
  Alcotest.(check (list int)) "scoped lookup after delete" []
    (Db.lookup_string_within db ~scope:shelf2 "Dune");
  Alcotest.(check (list int)) "query within dead scope" []
    (Db.query db (Ir.within ~scope:shelf2 Ir.all));
  (* conjunction under a dead scope is empty before any cursor runs *)
  Alcotest.(check (list int)) "conj within dead scope" []
    (Db.query db
       (Ir.within ~scope:shelf2
          (Ir.conj [ Ir.string_eq "Dune"; Ir.named "title" ])));
  (* the surviving shelf is untouched *)
  let shelf1 = List.hd (Db.elements_named db "shelf") in
  Alcotest.(check int) "shelf 1 still answers" 2
    (List.length (Db.lookup_string_within db ~scope:shelf1 "Dune"));
  Alcotest.(check (list int)) "matches the oracle"
    (Oracle.eval_ir store (Ir.within ~scope:shelf1 (Ir.string_eq "Dune")))
    (Db.query db (Ir.within ~scope:shelf1 (Ir.string_eq "Dune")))

(* --- Not over the full document --- *)

let test_not_full_document () =
  let db = mkdb () in
  let store = Db.store db in
  let universe = Db.query db Ir.all in
  Alcotest.(check (list int)) "All = oracle universe"
    (Oracle.eval_ir store Ir.all) universe;
  Alcotest.(check bool) "universe is not empty" true (universe <> []);
  Alcotest.(check (list int)) "not All is nothing" []
    (Db.query db (Ir.neg Ir.all));
  (* Not of a miss is the whole universe *)
  Alcotest.(check (list int)) "not absent = universe" universe
    (Db.query db (Ir.neg (Ir.string_eq "no such value")));
  (* complement really partitions the universe *)
  let p = Ir.contains "Dune" in
  let yes = Db.query db p and no = Db.query db (Ir.neg p) in
  Alcotest.(check int) "partition sizes" (List.length universe)
    (List.length yes + List.length no);
  Alcotest.(check (list int)) "oracle agrees on the complement"
    (Oracle.eval_ir store (Ir.neg p)) no

(* --- Or merge order after structural inserts --- *)

let test_or_doc_order_after_insert () =
  let db = mkdb () in
  let store = Db.store db in
  (* append under shelf 1: the new nodes get the highest node ids but
     sit before shelf 2 in document order *)
  let shelf1 = List.hd (Db.elements_named db "shelf") in
  (match Db.insert_xml db ~parent:shelf1 "<book><title>Ubik</title></book>" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "insert: %s" (Xvi_xml.Parser.error_to_string e));
  let ir = Ir.disj [ Ir.string_eq "Ubik"; Ir.string_eq "Dune" ] in
  let hits = Db.query db ir in
  Alcotest.(check (list int)) "or matches the oracle's document order"
    (Oracle.eval_ir store ir) hits;
  (* node-id order genuinely diverged, so the doc-order sort did work *)
  Alcotest.(check bool) "ids are not doc-ordered" true
    (List.sort compare hits <> hits);
  (* the lazy pipeline yields the cursors' node-id order *)
  Alcotest.(check (list int)) "query_seq is ascending node ids"
    (List.sort compare hits)
    (List.of_seq (Db.query_seq db ir))

(* --- totality without the optional indices --- *)

let test_unconfigured_fallbacks () =
  (* only the always-on indices: no substring, no typed. Every lookup
     still answers, through the planner's verified scan. *)
  let config = { Db.Config.default with Db.Config.types = [] } in
  let db = mkdb ~config () in
  let store = Db.store db in
  Alcotest.(check (list int)) "contains without the index"
    (Oracle.lookup_contains store "Dune")
    (Db.lookup_contains db "Dune");
  Alcotest.(check (list int)) "element_contains without the index"
    (Oracle.lookup_element_contains store "VALIS")
    (Db.lookup_element_contains db "VALIS");
  let r = Db.Range.between 7. 42. in
  Alcotest.(check (list int)) "typed range without the index"
    (Oracle.lookup_typed store (Xvi_core.Lexical_types.double ()) r)
    (Db.lookup_double db r);
  Alcotest.(check bool) "typed fallback finds the prices" true
    (Db.lookup_double db r <> []);
  (* a type no configuration ever indexed *)
  Alcotest.(check (list int)) "xs:integer scan fallback"
    (Oracle.lookup_typed store (Xvi_core.Lexical_types.integer ())
       (Db.Range.at_least 0.))
    (Db.lookup_typed db "xs:integer" (Db.Range.at_least 0.));
  (* unknown type names still fail loudly at compile time *)
  Alcotest.check_raises "unknown type"
    (Invalid_argument "Db: unknown type xs:bogus")
    (fun () -> ignore (Db.lookup_typed db "xs:bogus" Db.Range.any))

(* --- the planner's explain output --- *)

let contains_sub ~pattern s =
  let m = String.length pattern and n = String.length s in
  let rec at i j = j = m || (s.[i + j] = pattern.[j] && at i (j + 1)) in
  let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
  m = 0 || go 0

let test_explain_shapes () =
  let db = mkdb () in
  (* conjunction: cheapest input first, streaming merge *)
  let conj =
    Ir.conj [ Ir.named "book"; Ir.typed_range "xs:double" Db.Range.any ]
  in
  let ex = Db.explain db conj in
  Alcotest.(check bool) "conjunction intersects" true
    (contains_sub ~pattern:"intersect" ex);
  Alcotest.(check bool) "cheapest drives" true
    (contains_sub ~pattern:"cheapest drives" ex);
  (* the within wrapper becomes a staircase filter, not an intersection *)
  let shelf1 = List.hd (Db.elements_named db "shelf") in
  let ex = Db.explain db (Ir.within ~scope:shelf1 (Ir.string_eq "Dune")) in
  Alcotest.(check bool) "within staircases" true
    (contains_sub ~pattern:"staircase within" ex);
  Alcotest.(check bool) "no intersection for within" false
    (contains_sub ~pattern:"intersect" ex);
  (* no index for Not: the fallback announces itself *)
  let ex = Db.explain db (Ir.neg (Ir.named "book")) in
  Alcotest.(check bool) "scan fallback is explicit" true
    (contains_sub ~pattern:"scan+verify" ex)

let () =
  Alcotest.run "query"
    [
      ( "cursors",
        [
          Alcotest.test_case "empty cursors" `Quick test_empty_cursors;
          Alcotest.test_case "merge dedup" `Quick test_merge_dedup;
        ] );
      ( "planner",
        [
          Alcotest.test_case "collision false positives" `Quick
            test_collision_no_false_positives;
          Alcotest.test_case "within tombstoned scope" `Quick
            test_within_tombstoned_scope;
          Alcotest.test_case "not over full document" `Quick
            test_not_full_document;
          Alcotest.test_case "or doc order after insert" `Quick
            test_or_doc_order_after_insert;
          Alcotest.test_case "unconfigured fallbacks" `Quick
            test_unconfigured_fallbacks;
          Alcotest.test_case "explain shapes" `Quick test_explain_shapes;
        ] );
    ]

(* Quickstart: the paper's running example, end to end.

     dune exec examples/quickstart.exe

   Shreds the Figure 1 person document, builds the generic value
   indices (no path or type configuration!), runs the paper's queries,
   and applies an update to show the incremental maintenance. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Xpath = Xvi_xpath.Xpath

(* Figure 1 of the paper: a person with mixed-content <age> (string
   value "42") and a <weight> that assembles to the double 78.230 from
   three child fragments. *)
let person_xml =
  {|<person>
  <name><first>Arthur</first><family>Dent</family></name>
  <birthday>1966-09-26</birthday>
  <age><decades>4</decades>2<years/></age>
  <weight><kilos>78</kilos>.<grams>230</grams></weight>
</person>|}

let show store label nodes =
  Printf.printf "%-42s -> %d node(s)\n" label (List.length nodes);
  List.iter
    (fun n ->
      let what =
        match Store.kind store n with
        | Store.Element -> "<" ^ Store.name store n ^ ">"
        | Store.Text -> "text"
        | Store.Attribute -> "@" ^ Store.name store n
        | _ -> "node"
      in
      Printf.printf "    %-10s string value = %S\n" what
        (Store.string_value store n))
    nodes

let () =
  (* One call: parse + build the string equality index and the
     xs:double / xs:dateTime range indices over the whole document. *)
  let db =
    match Db.of_xml person_xml with
    | Ok db -> db
    | Error e ->
        prerr_endline (Xvi_xml.Parser.error_to_string e);
        exit 1
  in
  let store = Db.store db in

  print_endline "-- equality lookups on string values (hash index) --";
  (* the paper's //person[first/text() = "Arthur"] support *)
  show store {|lookup_string "Arthur"|} (Db.lookup_string db "Arthur");
  (* fn:data(name) = "ArthurDent": the element's XDM string value is the
     concatenation of its descendant text nodes *)
  show store {|lookup_string "ArthurDent"|} (Db.lookup_string db "ArthurDent");

  print_endline "\n-- range lookups on typed values (FSM/SCT index) --";
  (* the mixed-content <age> casts to 42 even though it is spread over
     <decades>4</decades>, the text "2" and an empty <years/> *)
  show store "doubles equal to 42" (Db.lookup_double db (Db.Range.between 42.0 42.0));
  (* <weight> = "78" ^ "." ^ "230" = 78.230 *)
  show store "doubles in [70, 80]" (Db.lookup_double db (Db.Range.between 70.0 80.0));

  print_endline "\n-- the same through the XPath front end --";
  let q = "//person[.//age = 42]" in
  let hits = Xpath.eval_indexed db (Xpath.parse_exn q) in
  Printf.printf "%-42s -> %d node(s)\n" q (List.length hits);

  print_endline "\n-- updates: Dent becomes Prefect --";
  (* find the text node under <family> and replace it; both indices are
     maintained by recombining hashes/states along the ancestor path —
     no other string data is re-read *)
  let dent =
    List.find
      (fun n -> Store.kind store n = Store.Text)
      (Db.lookup_string db "Dent")
  in
  Db.update_text db dent "Prefect";
  show store {|lookup_string "ArthurPrefect"|}
    (Db.lookup_string db "ArthurPrefect");
  show store {|lookup_string "ArthurDent" (stale?)|}
    (Db.lookup_string db "ArthurDent");

  (* and the indices still agree with a from-scratch rebuild *)
  match Db.validate db with
  | Ok () -> print_endline "\nindices validate clean against a rebuild"
  | Error e -> Printf.printf "\nVALIDATION FAILED: %s\n" e

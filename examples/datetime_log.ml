(* Time-window queries over a wiki-style revision log through the
   generic xs:dateTime range index.

     dune exec examples/datetime_log.exe

   The paper's range indices work for "any ordered XML typed value";
   this example exercises the second type it highlights, xs:dateTime:
   timestamps anywhere in the document are recognised by the dateTime
   FSM and indexed by their timeline position, with no path or schema
   configuration. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module TI = Xvi_core.Typed_index
module LT = Xvi_core.Lexical_types
module Table = Xvi_util.Table

let () =
  let xml = Xvi_workload.Datasets.wiki ~seed:11 ~factor:0.05 () in
  (* index only what this workload needs: dateTime (and double to show
     they coexist) *)
  let config =
    { Db.Config.default with Db.Config.types = [ LT.datetime (); LT.double () ] }
  in
  let db =
    match Db.of_xml ~config xml with
    | Ok db -> db
    | Error e ->
        prerr_endline (Xvi_xml.Parser.error_to_string e);
        exit 1
  in
  let store = Db.store db in
  let ti = Option.get (Db.typed_index db "xs:dateTime") in
  let spec = LT.datetime () in
  let key s = Option.get (spec.LT.parse s) in

  Printf.printf "revision log: %s nodes, %s timestamped entries\n\n"
    (Table.fmt_int (Store.live_count store))
    (Table.fmt_int (TI.entry_count ti));

  (* yearly activity histogram off ordered range scans *)
  print_endline "revisions per year (dateTime index range scans):";
  let years = List.init 8 (fun i -> 2001 + i) in
  let rows =
    List.map
      (fun y ->
        let lo = key (Printf.sprintf "%04d-01-01T00:00:00Z" y) in
        let hi = key (Printf.sprintf "%04d-12-31T23:59:59Z" y) in
        let hits =
          List.filter
            (fun n -> Store.kind store n = Store.Text)
            (TI.range ~lo ~hi ti)
        in
        [ string_of_int y; Table.fmt_int (List.length hits) ])
      years
  in
  Table.print ~header:[ "year"; "revisions" ] rows;

  (* a narrow window, then drill into the documents *)
  let lo = key "2004-07-01T00:00:00Z" and hi = key "2004-07-31T23:59:59Z" in
  let window =
    List.filter (fun n -> Store.kind store n = Store.Text) (TI.range ~lo ~hi ti)
  in
  Printf.printf "\nJuly 2004 window: %d revisions; first three titles:\n"
    (List.length window);
  List.iteri
    (fun i ts ->
      if i < 3 then begin
        (* timestamp text -> its <timestamp> -> the enclosing <doc> *)
        let rec doc n =
          match Store.parent store n with
          | Some p when Store.kind store p = Store.Element
                        && Store.name store p = "doc" -> Some p
          | Some p -> doc p
          | None -> None
        in
        match doc ts with
        | Some d ->
            let title =
              List.find_opt
                (fun c ->
                  Store.kind store c = Store.Element
                  && Store.name store c = "title")
                (Store.children store d)
            in
            Printf.printf "  %s -- %s\n"
              (Store.string_value store ts)
              (match title with
              | Some t -> Store.string_value store t
              | None -> "(untitled)")
        | None -> ()
      end)
    window;

  (* timezone-aware ordering: two spellings of the same instant *)
  print_endline "\ntimezone handling: +02:00 and Z spellings share a key:";
  Printf.printf "  key(2004-07-15T08:30:00+02:00) = %.0f\n"
    (key "2004-07-15T08:30:00+02:00");
  Printf.printf "  key(2004-07-15T06:30:00Z)      = %.0f\n"
    (key "2004-07-15T06:30:00Z")

(* Catalog search: the substring index (the paper's §7 future work), the
   path-index baseline, and snapshots, together on one document.

     dune exec examples/catalog_search.exe

   A DBLP-style bibliography is indexed once with every index enabled;
   the example contrasts the DBA-configured DB2-style path index with
   the paper's generic indices, runs containment searches, and shows the
   whole database round-tripping through a binary snapshot. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module LT = Xvi_core.Lexical_types
module PI = Xvi_core.Path_index
module Timing = Xvi_util.Timing
module Table = Xvi_util.Table

let () =
  let xml = Xvi_workload.Datasets.dblp ~seed:3 ~factor:0.15 () in
  let config =
    {
      Db.Config.default with
      Db.Config.types = [ LT.double (); LT.integer () ];
      substring = true;
    }
  in
  let db, build_ms =
    Timing.time_ms (fun () ->
        match Db.of_xml ~config xml with
        | Ok db -> db
        | Error e ->
            prerr_endline (Xvi_xml.Parser.error_to_string e);
            exit 1)
  in
  let store = Db.store db in
  Printf.printf "catalog: %s nodes, indexed in %s\n\n"
    (Table.fmt_int (Store.live_count store))
    (Table.fmt_ms build_ms);

  (* --- generic vs DBA-configured --- *)
  print_endline "-- one generic index vs a DB2-style path index per query --";
  let path_idx = PI.create_exn ~pattern:"//article/year" (LT.double ()) store in
  Printf.printf
    "path index //article/year: %s entries  (every new path needs DBA action)\n"
    (Table.fmt_int (PI.entry_count path_idx));
  let y2000 elems =
    List.length
      (List.filter
         (fun n ->
           Store.kind store n = Store.Element && Store.name store n = "year")
         elems)
  in
  Printf.printf "articles+inproceedings from 2000 (generic): %d year elements\n"
    (y2000 (Db.lookup_double db (Db.Range.between 2000.0 2000.0)));
  Printf.printf "…the path index only sees the declared path: %d\n\n"
    (List.length (PI.range ~lo:2000.0 ~hi:2000.0 path_idx));

  (* --- substring search --- *)
  print_endline "-- substring search (3-gram index) --";
  List.iter
    (fun pattern ->
      let hits, ms = Timing.time_ms (fun () -> Db.lookup_contains db pattern) in
      Printf.printf "  contains %-12S -> %5d text/attr nodes in %s\n" pattern
        (List.length hits) (Table.fmt_ms ms))
    [ "Database"; "Beeblebrox"; "quantum" ];
  let q = Xvi_xpath.Xpath.parse_exn "//article[contains(title, \"system\")]" in
  let hits, ms = Timing.time_ms (fun () -> Xvi_xpath.Xpath.eval_indexed db q) in
  Printf.printf "  //article[contains(title, \"system\")] -> %d articles in %s\n\n"
    (List.length hits) (Table.fmt_ms ms);

  (* --- snapshot round-trip --- *)
  print_endline "-- snapshot: save once, reopen instantly --";
  let path = Filename.temp_file "catalog" ".snap" in
  let (), save_ms = Timing.time_ms (fun () -> Xvi_core.Snapshot.save db path) in
  let db2, load_ms = Timing.time_ms (fun () -> Xvi_core.Snapshot.load_exn path) in
  Printf.printf "  saved in %s, reopened in %s (vs %s to rebuild)\n"
    (Table.fmt_ms save_ms) (Table.fmt_ms load_ms) (Table.fmt_ms build_ms);
  Printf.printf "  reloaded database answers identically: %b\n"
    (Db.lookup_contains db2 "Database" = Db.lookup_contains db "Database");
  (match Db.validate db2 with
  | Ok () -> print_endline "  reloaded indices validate clean"
  | Error e -> Printf.printf "  VALIDATION FAILED: %s\n" e);
  Sys.remove path

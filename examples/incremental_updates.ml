(* Incremental maintenance and lock-free transactions (paper §3, §5.1).

     dune exec examples/incremental_updates.exe

   Shows (1) that maintaining the indices after an update costs orders
   of magnitude less than rebuilding them, because ancestor hashes are
   recombined from sibling hashes with the associative C; and (2) the
   §5.1 transaction protocol: concurrent transactions never lock or
   conflict on shared ancestors, only on the leaves they both write. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module SI = Xvi_core.String_index
module Txn = Xvi_txn.Txn
module Timing = Xvi_util.Timing
module Table = Xvi_util.Table

let () =
  let xml = Xvi_workload.Xmark.generate ~seed:7 ~factor:1.0 () in
  let db =
    match Db.of_xml xml with
    | Ok db -> db
    | Error e ->
        prerr_endline (Xvi_xml.Parser.error_to_string e);
        exit 1
  in
  let store = Db.store db in
  Printf.printf "document: %s nodes\n\n" (Table.fmt_int (Store.live_count store));

  (* --- 1. incremental maintenance vs rebuild --- *)
  print_endline "-- maintenance cost for batches of random text updates --";
  let rebuild_ms =
    Timing.repeat_ms 3 (fun () -> ignore (SI.create store))
  in
  let rows =
    List.map
      (fun count ->
        let updates =
          Xvi_workload.Update_workload.random_text_updates ~seed:count store
            ~count
        in
        let (), ms = Timing.time_ms (fun () -> Db.update_texts db updates) in
        [
          Table.fmt_int count;
          Table.fmt_ms ms;
          Printf.sprintf "%.0fx cheaper than rebuild (%s)"
            (rebuild_ms /. ms) (Table.fmt_ms rebuild_ms);
        ])
      [ 10; 100; 1000 ]
  in
  Table.print ~header:[ "updated nodes"; "all-index maintenance"; "vs rebuild" ] rows;
  (match Db.validate db with
  | Ok () -> print_endline "indices validate clean after all batches\n"
  | Error e -> failwith e);

  (* --- 2. transactions without ancestor locks --- *)
  print_endline "-- transactions: writers of different leaves never conflict --";
  let mgr = Txn.manager db in
  let texts = Store.text_nodes store in

  (* Alice and Bob update different children under the same ancestors;
     both commits succeed, in either order, because the commit
     recombines ancestor hashes with the commutative-enough C instead of
     locking the root. *)
  let alice = Txn.begin_ mgr and bob = Txn.begin_ mgr in
  let write t n v =
    match Txn.update_text t n v with
    | Ok () -> ()
    | Error `Finished -> failwith "transaction already finished"
    | Error `Not_text -> failwith "not a text node"
  in
  write alice texts.(100) "alice was here";
  write bob texts.(101) "bob was here";
  (match (Txn.commit bob, Txn.commit alice) with
  | Ok (), Ok () -> print_endline "alice and bob both committed (no ancestor locks)"
  | _ -> failwith "unexpected conflict");

  (* Carol and Dave race on the same leaf: first committer wins. *)
  let carol = Txn.begin_ mgr and dave = Txn.begin_ mgr in
  write carol texts.(200) "carol's value";
  write dave texts.(200) "dave's value";
  (match Txn.commit carol with Ok () -> () | Error _ -> failwith "carol?");
  (match Txn.commit dave with
  | Error c ->
      Printf.printf "dave aborted as expected: %s\n" c.Txn.reason
  | Ok () -> failwith "dave should have conflicted");
  (* a finished transaction rejects further writes instead of raising *)
  (match Txn.update_text dave texts.(200) "too late" with
  | Error `Finished -> ()
  | _ -> failwith "finished transaction accepted a write");
  let st = Txn.stats mgr in
  Printf.printf "stats: %d committed, %d aborted (%d conflicts)\n"
    st.Txn.committed st.Txn.aborted st.Txn.conflicts;
  match Db.validate db with
  | Ok () -> print_endline "indices validate clean after the transactions"
  | Error e -> failwith e

(* Auction analytics over XMark-style data: the self-tuning indices
   accelerate ad-hoc value queries that were never configured for.

     dune exec examples/auction_analytics.exe

   Generates an auction site document, then answers analytical XPath
   queries twice — by naive tree walking and through the value indices —
   and reports both timings and the index probes used. *)

module Store = Xvi_xml.Store
module Db = Xvi_core.Db
module Xpath = Xvi_xpath.Xpath
module Timing = Xvi_util.Timing
module Table = Xvi_util.Table

let () =
  print_endline "generating an XMark-style auction document...";
  let xml = Xvi_workload.Xmark.generate ~seed:2026 ~factor:1.0 () in
  Printf.printf "document: %s\n" (Table.fmt_bytes (String.length xml));

  let store = Xvi_xml.Parser.parse_exn xml in
  Printf.printf "shredded: %s nodes\n" (Table.fmt_int (Store.live_count store));

  (* build in parallel on every core the host recommends; jobs = 1 would
     give the bit-identical serial build *)
  let jobs = Xvi_util.Pool.recommended_jobs () in
  let config = { Db.Config.default with Db.Config.jobs } in
  let db, build_ms = Timing.time_ms (fun () -> Db.of_store ~config store) in
  Printf.printf "indices built in %s on %d domain(s) (storage %s)\n\n"
    (Table.fmt_ms build_ms) jobs
    (Table.fmt_bytes (Db.index_storage_bytes db));

  (* The DBA never declared any of these paths or types — the indices
     cover the entire document (the paper's "self-tuned" property). *)
  let queries =
    [
      (* point string lookup through a deep path *)
      "//person[name = \"Arthur Dent\"]";
      (* numeric range over auction bids *)
      "//open_auction[initial >= 100 and initial < 120]";
      (* equality on a mixed-content element value *)
      "//item[quantity = 2]";
      (* closed-auction price analytics *)
      "//closed_auction[price < 5]";
      (* attribute values are indexed too *)
      "//person[@id = \"person42\"]";
      (* no value predicate: seeded by the element-name index instead *)
      "//person[watches]";
    ]
  in
  let rows =
    List.map
      (fun q ->
        let t = Xpath.parse_exn q in
        let naive, naive_ms = Timing.time_ms (fun () -> Xpath.eval store t) in
        let fast, fast_ms = Timing.time_ms (fun () -> Xpath.eval_indexed db t) in
        assert (naive = fast);
        let plan = Xpath.last_plan () in
        [
          q;
          string_of_int (List.length naive);
          Table.fmt_ms naive_ms;
          Table.fmt_ms fast_ms;
          Printf.sprintf "%.1fx" (naive_ms /. fast_ms);
          Printf.sprintf "%d str / %d dbl / %d name" plan.Xpath.used_string_index
            plan.Xpath.used_double_index plan.Xpath.used_name_index;
        ])
      queries
  in
  Table.print
    ~header:[ "query"; "hits"; "naive"; "indexed"; "speedup"; "index probes" ]
    rows;

  (* A price histogram straight off the double index: range scans are
     ordered, so bucketing is a single pass. *)
  print_endline "\nclosed-auction price deciles from the double index:";
  let ti = Option.get (Db.typed_index db "xs:double") in
  let prices =
    List.filter_map
      (fun n ->
        match Store.kind store n with
        | Store.Element when Store.name store n = "price" ->
            Xvi_core.Typed_index.value_of ti n
        | _ -> None)
      (Xvi_core.Typed_index.range ~lo:0.0 ti)
  in
  let arr = Array.of_list prices in
  Array.sort compare arr;
  let n = Array.length arr in
  Printf.printf "  %d prices, min %.2f, median %.2f, p90 %.2f, max %.2f\n" n
    arr.(0)
    arr.(n / 2)
    arr.(n * 9 / 10)
    arr.(n - 1)

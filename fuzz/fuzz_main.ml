(* Long-running differential fuzz target behind `dune build @fuzz`.

   Defaults exercise 50 random documents x 200 operations (10k ops,
   ~300k oracle cross-checks) plus an exhaustive fault-injection sweep
   of the default-config snapshot. Override via the environment:

     XVI_FUZZ_SEED=N   master seed            (default 1)
     XVI_FUZZ_DOCS=N   documents              (default 50)
     XVI_FUZZ_OPS=N    operations per doc     (default 200)

   CI's smoke run sets small XVI_FUZZ_DOCS / XVI_FUZZ_OPS; a nightly or
   a manual soak raises them arbitrarily. Exits non-zero and prints a
   replayable minimal trace on any divergence. *)

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "%s: expected a positive integer, got %S\n" name s;
          exit 2)

let () =
  let seed = env_int "XVI_FUZZ_SEED" 1 in
  let docs = env_int "XVI_FUZZ_DOCS" 50 in
  let ops = env_int "XVI_FUZZ_OPS" 200 in
  Printf.printf "xvi fuzz: seed %d, %d docs x %d ops\n%!" seed docs ops;
  let t0 = Unix.gettimeofday () in
  (match
     Xvi_check.Runner.run ~log:print_endline ~seed ~docs ~ops_per_doc:ops ()
   with
  | Ok o ->
      Printf.printf "differential ok: %d docs, %d ops, %d checks in %.1fs\n%!"
        o.Xvi_check.Runner.docs o.ops o.checks
        (Unix.gettimeofday () -. t0)
  | Error f ->
      prerr_endline (Xvi_check.Runner.render_trace f);
      exit 1);
  (* exhaustive fault sweep on a realistic (default-config) snapshot:
     every truncation length, plus sampled byte flips over the whole
     file and the full header region *)
  let db =
    match
      Xvi_core.Db.of_xml
        "<doc><person age=\"42\">Arthur<weight>73.5</weight></person><entry \
         ts=\"2009-03-24T12:00:00Z\">measure</entry></doc>"
    with
    | Ok db -> db
    | Error e ->
        prerr_endline (Xvi_xml.Parser.error_to_string e);
        exit 1
  in
  let t1 = Unix.gettimeofday () in
  match Xvi_check.Fault.sweep ~flips:2048 db with
  | Ok r ->
      Printf.printf "fault sweep ok: %d truncations, %d flips in %.1fs\n"
        r.Xvi_check.Fault.truncations r.flips
        (Unix.gettimeofday () -. t1)
  | Error m ->
      prerr_endline ("fault sweep: " ^ m);
      exit 1

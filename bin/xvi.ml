(* xvi — command-line front end to the XML value index library.

   Subcommands:
     generate   emit one of the paper's synthetic data sets as XML
     shred      build all indices and save a binary snapshot, or (with
                --durable) initialise a crash-safe durable directory;
                reads stdin when the document argument is -
     ingest     stream a document (file or stdin) into a fresh durable
                directory in bounded memory: SAX events shredded and
                indexed batch by batch, every batch WAL-committed, so a
                crash mid-load recovers to a resumable prefix
     stats      shred a document and print its Table 1 row; on a durable
                directory, report WAL length and checkpoint watermark
     query      evaluate an XPath expression, naive vs. index-accelerated
                (accepts XML or a snapshot)
     update     apply random text updates and report maintenance time;
                on a durable directory, commits are write-ahead logged
                under the chosen --sync policy
     recover    crash-recover a durable directory and report the replay
     checkpoint snapshot a durable directory and truncate its log
     serve      serve a database over a Unix socket: snapshot-isolated
                readers, single-writer sessions, group commit; with
                --follow, run as a replication follower of another server
     promote    turn a running follower into the leader (failover)
     client     scripted protocol session against a running server
     fuzz       differential-check random traces against the oracle
     collisions hash-stability histogram of a document (Figure 11)

   Every durable subcommand goes through Xvi_serve.Engine — the unified
   facade over the in-memory / durable split — rather than constructing
   Xvi_wal.Durable handles directly.  *)

open Cmdliner

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Sax = Xvi_xml.Sax
module Ingest = Xvi_ingest.Ingest
module Db = Xvi_core.Db
module Table = Xvi_util.Table
module Txn = Xvi_txn.Txn
module Wal = Xvi_wal.Wal
module Durable = Xvi_wal.Durable
module Engine = Xvi_serve.Engine
module Server = Xvi_serve.Server
module Client = Xvi_serve.Client
module Protocol = Xvi_serve.Protocol
module Repl_transport = Xvi_repl.Transport
module Leader = Xvi_repl.Leader
module Follower = Xvi_repl.Follower

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* "-" means stdin, the usual pipeline convention. *)
let read_input path =
  if String.equal path "-" then begin
    let b = Buffer.create 65536 in
    let chunk = Bytes.create 65536 in
    let rec drain () =
      let n = input stdin chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes b chunk 0 n;
        drain ()
      end
    in
    drain ();
    Buffer.contents b
  end
  else read_file path

let input_label path = if String.equal path "-" then "<stdin>" else path

let shred_exn path =
  match Parser.parse (read_input path) with
  | Ok store -> store
  | Error e ->
      Printf.eprintf "%s: parse error: %s\n" (input_label path)
        (Parser.error_to_string e);
      exit 1

(* Accept XML, a saved snapshot, or a durable directory wherever a
   database is needed. A non-default config forces a re-index even when
   loading a snapshot. Durable directories are recovered through the
   engine; the returned database is the published epoch, which stays
   valid after the engine is released. *)
let open_db ?config path =
  if Sys.file_exists path && Sys.is_directory path then begin
    if not (Durable.is_durable_dir path) then begin
      Printf.eprintf "%s: directory is not a durable store\n" path;
      exit 1
    end;
    match Engine.open_ ?config (Engine.Dir path) with
    | Ok t ->
        let db = Engine.snapshot t in
        Engine.close t;
        db
    | Error e ->
        Printf.eprintf "%s: %s\n" path (Engine.error_to_string e);
        exit 1
  end
  else if Xvi_core.Snapshot.is_snapshot path then
    match Xvi_core.Snapshot.load ?config path with
    | Ok db -> db
    | Error e ->
        Printf.eprintf "%s: %s\n" path (Xvi_core.Snapshot.error_to_string e);
        exit 1
  else Db.of_store ?config (shred_exn path)

let sync_mode_arg =
  let parse s =
    match Wal.sync_mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "%S is not a sync mode (always, never, group, group:<ms>)" s))
  in
  let print ppf m = Format.pp_print_string ppf (Wal.sync_mode_to_string m) in
  Cmdliner.Arg.(
    value
    & opt (conv (parse, print)) Wal.Always
    & info [ "sync" ] ~docv:"MODE"
        ~doc:
          "WAL durability policy for a durable directory: $(b,always) (one \
           fsync per commit), $(b,group) or $(b,group:<ms>) (commits inside \
           the window share one fsync), $(b,never) (leave it to the OS).")

let open_engine_or_die ?sync_mode dir =
  match Engine.open_ ?sync_mode (Engine.Dir dir) with
  | Ok t -> t
  | Error e ->
      Printf.eprintf "%s: %s\n" dir (Engine.error_to_string e);
      exit 1

let print_replay_report = function
  | None -> print_endline "recovery: log already at the snapshot; nothing to replay"
  | Some (r : Wal.replay_report) ->
      Printf.printf
        "recovery: %d txn(s) / %d op(s) replayed, %d already in the \
         snapshot, %d aborted\n"
        r.Wal.stats.Wal.applied_txns r.Wal.stats.Wal.applied_ops
        r.Wal.stats.Wal.skipped_txns r.Wal.stats.Wal.aborted_txns;
      if r.Wal.truncated_bytes > 0 then
        Printf.printf "recovery: truncated %d dead byte(s) (%d record(s)) past the last commit boundary\n"
          r.Wal.truncated_bytes r.Wal.dropped_records;
      (match r.Wal.damage with
      | Some d -> Printf.printf "recovery: damaged tail detected: %s\n" d
      | None -> ())

let engine_stats_rows t =
  let st = Engine.stats t in
  let durable_rows =
    match st.Engine.durable with
    | None -> []
    | Some d ->
        [
          [ "WAL length"; Table.fmt_bytes d.Durable.wal_bytes ];
          [ "next LSN"; string_of_int d.Durable.next_lsn ];
          [ "last checkpoint LSN"; string_of_int d.Durable.last_checkpoint_lsn ];
        ]
  in
  [
    [ "published epoch"; string_of_int st.Engine.epoch ];
    [ "commits since open"; string_of_int st.Engine.commits ];
  ]
  @ durable_rows

(* -j/--jobs: 0 means "one per core", the make convention. *)
let jobs_arg =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Build indices on $(docv) domains in parallel; 0 picks the host's \
           recommended domain count.")

let resolve_jobs j = if j = 0 then Xvi_util.Pool.recommended_jobs () else max j 1

(* --- generate --- *)

let generators =
  [
    ("xmark", fun ~seed ~factor -> Xvi_workload.Xmark.generate ~seed ~factor ());
    ("epageo", fun ~seed ~factor -> Xvi_workload.Datasets.epageo ~seed ~factor ());
    ("dblp", fun ~seed ~factor -> Xvi_workload.Datasets.dblp ~seed ~factor ());
    ("psd", fun ~seed ~factor -> Xvi_workload.Datasets.psd ~seed ~factor ());
    ("wiki", fun ~seed ~factor -> Xvi_workload.Datasets.wiki ~seed ~factor ());
  ]

let generate_cmd =
  let dataset =
    let doc = "Data set: xmark, epageo, dblp, psd or wiki." in
    Arg.(required & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) generators))) None
         & info [] ~docv:"DATASET" ~doc)
  in
  let factor =
    Arg.(value & opt float 1.0
         & info [ "factor"; "f" ] ~docv:"F"
             ~doc:"Size factor; 1.0 is about 1/40th of the paper's document.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run dataset factor seed output =
    let gen = List.assoc dataset generators in
    let xml = gen ~seed ~factor in
    match output with
    | Some path ->
        write_file path xml;
        Printf.printf "wrote %s (%s)\n" path
          (Table.fmt_bytes (String.length xml))
    | None -> print_string xml
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic data set")
    Term.(const run $ dataset $ factor $ seed $ output)

(* --- shred --- *)

let shred_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"XML"
             ~doc:"Document to shred; $(b,-) reads it from standard input.")
  in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"SNAPSHOT" ~doc:"Snapshot output path.")
  in
  let substring =
    Arg.(value & flag
         & info [ "substring" ] ~doc:"Also build the substring (3-gram) index.")
  in
  let durable =
    Arg.(value & flag
         & info [ "durable" ]
             ~doc:
               "Treat $(b,-o) as a durable directory: initialise it with a \
                snapshot plus an empty write-ahead log instead of writing a \
                bare snapshot file.")
  in
  let force =
    Arg.(value & flag
         & info [ "force" ]
             ~doc:
               "With $(b,--durable): overwrite $(b,-o) even when it already \
                holds a durable store. Without this flag, pointing at an \
                existing durable directory is refused — it would destroy all \
                its committed data.")
  in
  let run file output substring durable force jobs =
    let config =
      { Db.Config.default with substring; jobs = resolve_jobs jobs }
    in
    let db, ms =
      Xvi_util.Timing.time_ms (fun () ->
          Db.of_store ~config (shred_exn file))
    in
    Printf.printf "shredded and indexed %s in %s (%d jobs)\n"
      (input_label file) (Table.fmt_ms ms) config.Db.Config.jobs;
    if durable then begin
      (* Engine.init carries the refuse-to-overwrite contract *)
      let t, ms =
        Xvi_util.Timing.time_ms (fun () -> Engine.init ~force ~dir:output db)
      in
      match t with
      | Error e ->
          Printf.eprintf "%s: %s\n" output (Engine.error_to_string e);
          exit 1
      | Ok t ->
          Engine.close t;
          Printf.printf
            "durable directory %s initialised in %s (snapshot + WAL)\n" output
            (Table.fmt_ms ms)
    end
    else begin
      let (), ms =
        Xvi_util.Timing.time_ms (fun () -> Xvi_core.Snapshot.save db output)
      in
      Printf.printf "snapshot %s written in %s\n" output (Table.fmt_ms ms)
    end
  in
  Cmd.v
    (Cmd.info "shred"
       ~doc:
         "Shred a document, build all indices, save a snapshot or a durable \
          directory")
    Term.(const run $ file $ output $ substring $ durable $ force $ jobs_arg)

(* --- ingest --- *)

let ingest_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"XML"
             ~doc:"Document to ingest; $(b,-) streams it from standard input.")
  in
  let dir =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"DIR"
             ~doc:"Durable directory to create (snapshot + write-ahead log).")
  in
  let batch_rows =
    Arg.(value & opt int Ingest.default_batch_rows
         & info [ "batch-rows" ] ~docv:"N"
             ~doc:
               "Staged rows per committed batch. Smaller batches bound live \
                memory tighter and make crash recovery finer-grained; larger \
                ones amortise the per-batch sort and fsync.")
  in
  let force =
    Arg.(value & flag
         & info [ "force" ]
             ~doc:
               "Overwrite $(b,-o) even when it already holds a durable store. \
                Without this flag an existing directory is refused — \
                overwriting would destroy its committed data.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:
               "Finish an interrupted ingest instead of starting one: \
                $(b,-o) must hold the pending prefix left by a crashed run, \
                and $(docv) must be the $(i,same) document it was fed (its \
                already-durable prefix is skipped).")
  in
  let run file dir batch_rows force resume jobs sync_mode =
    let jobs = resolve_jobs jobs in
    let ic =
      if String.equal file "-" then stdin
      else
        try open_in_bin file
        with Sys_error m ->
          Printf.eprintf "%s\n" m;
          exit 1
    in
    Fun.protect
      ~finally:(fun () -> if not (String.equal file "-") then close_in_noerr ic)
    @@ fun () ->
    let source = Sax.of_channel ic in
    (* one line per committed batch, overwritten in place; silent when
       stderr is not a terminal (CI logs, pipelines) *)
    let live = Unix.isatty Unix.stderr in
    let progressed = ref false in
    let progress (p : Ingest.progress) =
      if live then begin
        progressed := true;
        Printf.eprintf "\ringest: %s row(s) in %d batch(es), %s read%!"
          (Table.fmt_int p.Ingest.rows) p.Ingest.batches
          (Table.fmt_bytes p.Ingest.consumed)
      end
    in
    let progress_done () = if !progressed then prerr_newline () in
    let report verb t ms =
      let store = Db.store (Engine.snapshot t) in
      Printf.printf "%s %s into %s in %s: %s node(s) indexed (%d jobs)\n" verb
        (input_label file) dir (Table.fmt_ms ms)
        (Table.fmt_int (Store.live_count store - 1))
        jobs;
      Engine.close t
    in
    let with_pool f =
      if jobs > 1 then Xvi_util.Pool.with_pool ~jobs (fun p -> f (Some p))
      else f None
    in
    with_pool @@ fun pool ->
    if resume then begin
      match Durable.open_ ~sync_mode dir with
      | Error m ->
          Printf.eprintf "%s: %s\n" dir m;
          exit 1
      | Ok d -> (
          match Durable.pending_ingest d with
          | None ->
              Durable.close d;
              Printf.eprintf
                "%s: nothing to resume — no interrupted ingest in this \
                 directory\n"
                dir;
              exit 1
          | Some p ->
              Printf.printf
                "resuming %s: %d durable chunk(s) (%s) already committed\n%!"
                dir p.Durable.chunks
                (Table.fmt_bytes p.Durable.chunk_bytes);
              let r, ms =
                Xvi_util.Timing.time_ms (fun () ->
                    Durable.resume_ingest ~batch_rows ?pool ~progress d source)
              in
              progress_done ();
              (match r with
              | Error m ->
                  Printf.eprintf "%s: %s\n" dir m;
                  exit 1
              | Ok d -> (
                  (* reopen through the engine facade for the summary *)
                  Durable.close d;
                  match Engine.open_ ~sync_mode (Engine.Dir dir) with
                  | Error e ->
                      Printf.eprintf "%s: %s\n" dir (Engine.error_to_string e);
                      exit 1
                  | Ok t -> report "resumed" t ms)))
    end
    else begin
      let r, ms =
        Xvi_util.Timing.time_ms (fun () ->
            Engine.ingest ~sync_mode ~force ~batch_rows ?pool ~progress ~dir
              source)
      in
      progress_done ();
      match r with
      | Error e ->
          Printf.eprintf "%s: %s\n" dir (Engine.error_to_string e);
          exit 1
      | Ok t -> report "ingested" t ms
    end
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Stream a document into a fresh durable directory in bounded memory \
          (SAX shred, batched indexing, WAL-committed batches)")
    Term.(
      const run $ file $ dir $ batch_rows $ force $ resume $ jobs_arg
      $ sync_mode_arg)

(* --- stats --- *)

let stats_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let durable_stats dir =
    let t = open_engine_or_die dir in
    print_replay_report (Engine.last_replay t);
    let store = Db.store (Engine.snapshot t) in
    Table.print
      ~header:[ "metric"; "value" ]
      ([
         [ "total nodes"; Table.fmt_int (Store.live_count store - 1) ];
         [ "text nodes"; Table.fmt_int (Store.count_of_kind store Store.Text) ];
         [ "db storage"; Table.fmt_bytes (Store.storage_bytes store) ];
         [ "  off-heap (columns)"; Table.fmt_bytes (Store.offheap_bytes store) ];
         [ "  GC heap (name pool)"; Table.fmt_bytes (Store.heap_bytes store) ];
       ]
      @ engine_stats_rows t);
    Engine.close t
  in
  let run file jobs =
    if Sys.is_directory file && Durable.is_durable_dir file then
      durable_stats file
    else begin
    let src = read_file file in
    let store, shred_ms =
      if Xvi_core.Snapshot.is_snapshot file then
        match Xvi_core.Snapshot.load file with
        | Ok db -> (Db.store db, 0.0)
        | Error e ->
            Printf.eprintf "%s: %s\n" file
              (Xvi_core.Snapshot.error_to_string e);
            exit 1
      else Xvi_util.Timing.time_ms (fun () -> shred_exn file)
    in
    let double = Xvi_core.Lexical_types.double () in
    let jobs = resolve_jobs jobs in
    let build () =
      if jobs > 1 then
        Xvi_util.Pool.with_pool ~jobs (fun pool ->
            Xvi_core.Typed_index.create ~pool double store)
      else Xvi_core.Typed_index.create double store
    in
    let ti, index_ms = Xvi_util.Timing.time_ms build in
    let st = Xvi_core.Typed_index.stats ti store in
    let total = Store.live_count store - 1 in
    Table.print
      ~header:[ "metric"; "value" ]
      [
        [ "file size"; Table.fmt_bytes (String.length src) ];
        [ "shred time"; Table.fmt_ms shred_ms ];
        [ "double-index time"; Table.fmt_ms index_ms ];
        [ "total nodes"; Table.fmt_int total ];
        [ "element nodes"; Table.fmt_int (Store.count_of_kind store Store.Element) ];
        [ "text nodes"; Table.fmt_int (Store.count_of_kind store Store.Text) ];
        [ "attribute nodes"; Table.fmt_int (Store.count_of_kind store Store.Attribute) ];
        [ "double text nodes"; Table.fmt_int st.Xvi_core.Typed_index.complete_text_nodes ];
        [ "double non-leaf nodes"; Table.fmt_int st.Xvi_core.Typed_index.complete_non_leaves ];
        [ "db storage"; Table.fmt_bytes (Store.storage_bytes store) ];
        [ "  off-heap (columns)"; Table.fmt_bytes (Store.offheap_bytes store) ];
        [ "  GC heap (name pool)"; Table.fmt_bytes (Store.heap_bytes store) ];
        [ "double index storage"; Table.fmt_bytes (Xvi_core.Typed_index.storage_bytes ti) ];
      ]
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print statistics for a document, snapshot or durable directory \
          (including WAL length and checkpoint watermark)")
    Term.(const run $ file $ jobs_arg)

(* --- query --- *)

let query_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let expr = Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH") in
  let naive_only =
    Arg.(value & flag & info [ "naive" ] ~doc:"Skip the index-accelerated run.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:
               "Print the predicate conjuncts compiled to the query IR, \
                sorted by estimated cardinality, and the planner's plan for \
                the chosen candidate generator.")
  in
  let within =
    Arg.(value & opt (some string) None
         & info [ "within" ] ~docv:"XPATH"
             ~doc:
               "Restrict matches to the subtree rooted at the first node the \
                given path selects; runs as a staircase-join filter in the \
                plan, not a post-hoc intersection.")
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit"; "n" ] ~docv:"N"
         ~doc:"Print at most N matches.")
  in
  let parse_or_die expr =
    match Xvi_xpath.Xpath.parse expr with
    | Ok t -> t
    | Error e ->
        Printf.eprintf "XPath error at %d: %s\n" e.Xvi_xpath.Xpath.pos
          e.Xvi_xpath.Xpath.message;
        exit 1
  in
  let indent s =
    String.concat ""
      (List.map (fun l -> "  " ^ l ^ "\n") (String.split_on_char '\n' (String.trim s)))
  in
  let run file expr naive_only explain within limit =
    let xpath = parse_or_die expr in
    let db, open_ms = Xvi_util.Timing.time_ms (fun () -> open_db file) in
    let store = Db.store db in
    let scope =
      match within with
      | None -> None
      | Some wexpr -> (
          match Xvi_xpath.Xpath.eval store (parse_or_die wexpr) with
          | n :: _ -> Some n
          | [] ->
              Printf.eprintf "--within %s: selects no node\n" wexpr;
              exit 1)
    in
    let wrap ir =
      match scope with None -> ir | Some s -> Db.Ir.within ~scope:s ir
    in
    if explain then begin
      match Xvi_xpath.Xpath.compile_candidates db xpath with
      | [] ->
          print_endline
            "explain: no indexable conjunct; evaluated by tree walk"
      | cands ->
          let ranked =
            List.sort
              (fun (_, _, a) (_, _, b) -> Int.compare a b)
              (List.map (fun (l, ir) -> (l, ir, Db.estimate db ir)) cands)
          in
          print_endline "conjuncts, cheapest candidate generator first:";
          List.iteri
            (fun i (l, ir, e) ->
              Printf.printf "  %s est %-8d %s   [ir: %s]\n"
                (if i = 0 then "->" else "  ")
                e l (Db.Ir.to_string ir))
            ranked;
          let _, driver, _ = List.hd ranked in
          Printf.printf "driver plan:\n%s" (indent (Db.explain db (wrap driver)));
          if List.length ranked > 1 then begin
            let all = Db.Ir.conj (List.map (fun (_, ir, _) -> ir) ranked) in
            Printf.printf
              "conjunctive index plan (node-set semantics; the XPath \
               evaluator instead verifies residual conjuncts per candidate):\n\
               %s"
              (indent (Db.explain db (wrap all)))
          end
    end;
    let in_scope =
      match scope with
      | None -> fun _ -> true
      | Some s ->
          let plane = Db.plane db in
          fun n -> Xvi_xml.Pre_plane.in_subtree plane ~scope:s n
    in
    let naive, naive_ms =
      Xvi_util.Timing.time_ms (fun () ->
          List.filter in_scope (Xvi_xpath.Xpath.eval store xpath))
    in
    Printf.printf "naive:   %d matches in %s\n" (List.length naive)
      (Table.fmt_ms naive_ms);
    let result =
      if naive_only then naive
      else begin
        let build_ms = open_ms in
        let indexed, fast_ms =
          Xvi_util.Timing.time_ms (fun () ->
              List.filter in_scope (Xvi_xpath.Xpath.eval_indexed db xpath))
        in
        let plan = Xvi_xpath.Xpath.last_plan () in
        Printf.printf
          "indexed: %d matches in %s (open/build %s; %d string / %d double / \
           %d name index probes)\n"
          (List.length indexed) (Table.fmt_ms fast_ms) (Table.fmt_ms build_ms)
          plan.Xvi_xpath.Xpath.used_string_index
          plan.Xvi_xpath.Xpath.used_double_index
          plan.Xvi_xpath.Xpath.used_name_index;
        if indexed <> naive then Printf.printf "WARNING: result sets differ!\n";
        indexed
      end
    in
    List.iteri
      (fun i n ->
        if i < limit then
          let rendered = Xvi_xml.Serializer.to_string store n in
          let rendered =
            if String.length rendered > 120 then String.sub rendered 0 117 ^ "..."
            else rendered
          in
          Printf.printf "  %s\n" rendered)
      result
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate an XPath expression")
    Term.(const run $ file $ expr $ naive_only $ explain $ within $ limit)

(* --- update --- *)

let update_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let count =
    Arg.(value & opt int 1000 & info [ "count"; "n" ] ~docv:"N"
         ~doc:"Number of text nodes to update.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N") in
  (* On a durable directory every update is one write-ahead-logged
     transaction, so the run also demonstrates the sync policies: count
     the commits that paid an inline fsync vs. rode a group window. *)
  let durable_update dir sync_mode count seed =
    let t, open_ms =
      Xvi_util.Timing.time_ms (fun () -> open_engine_or_die ~sync_mode dir)
    in
    print_replay_report (Engine.last_replay t);
    Printf.printf "recover/open: %s\n" (Table.fmt_ms open_ms);
    (* node ids are shared between the published epoch and the master,
       so targets picked on the snapshot commit cleanly through the
       engine's writer *)
    let store = Db.store (Engine.snapshot t) in
    let updates =
      Xvi_workload.Update_workload.random_text_updates ~seed store ~count
    in
    let (), ms =
      Xvi_util.Timing.time_ms (fun () ->
          List.iter
            (fun (n, v) ->
              match Engine.update_texts t [ (n, v) ] with
              | Ok _ -> ()
              | Error e ->
                  Printf.eprintf "commit failed: %s\n"
                    (Engine.error_to_string e);
                  exit 1)
            updates)
    in
    Engine.sync t;
    let st = Engine.stats t in
    Printf.printf
      "committed %d durable txn(s) in %s under --sync %s (%d fsynced inline, \
       %d group-batched)\n"
      st.Engine.txn.Txn.committed (Table.fmt_ms ms)
      (Wal.sync_mode_to_string sync_mode)
      st.Engine.txn.Txn.wal_synced st.Engine.txn.Txn.wal_deferred;
    (match Db.validate (Engine.snapshot t) with
    | Ok () -> print_endline "indices validate clean against a rebuild"
    | Error e ->
        Printf.printf "VALIDATION FAILED: %s\n" e;
        exit 1);
    Table.print ~header:[ "metric"; "value" ] (engine_stats_rows t);
    Engine.close t
  in
  let run file count seed sync_mode jobs =
    if Sys.is_directory file && Durable.is_durable_dir file then
      durable_update file sync_mode count seed
    else begin
      let jobs = resolve_jobs jobs in
      let config =
        if jobs > 1 then Some { Db.Config.default with jobs } else None
      in
      let db, build_ms =
        Xvi_util.Timing.time_ms (fun () -> open_db ?config file)
      in
      let store = Db.store db in
      Printf.printf "index open/build: %s\n" (Table.fmt_ms build_ms);
      let updates =
        Xvi_workload.Update_workload.random_text_updates ~seed store ~count
      in
      let (), ms =
        Xvi_util.Timing.time_ms (fun () -> Db.update_texts db updates)
      in
      Printf.printf "updated %d text nodes; index maintenance %s\n"
        (List.length updates) (Table.fmt_ms ms);
      match Db.validate db with
      | Ok () -> print_endline "indices validate clean against a rebuild"
      | Error e ->
          Printf.printf "VALIDATION FAILED: %s\n" e;
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Random text updates with index maintenance; write-ahead logged \
          when the target is a durable directory")
    Term.(const run $ file $ count $ seed $ sync_mode_arg $ jobs_arg)

(* --- recover / checkpoint --- *)

let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
       ~doc:"A durable directory (snapshot.xvi + wal.log).")

let recover_cmd =
  let run dir sync_mode =
    if not (Durable.is_durable_dir dir) then begin
      Printf.eprintf "%s: not a durable directory (no snapshot.xvi)\n" dir;
      exit 1
    end;
    let t, ms =
      Xvi_util.Timing.time_ms (fun () -> open_engine_or_die ~sync_mode dir)
    in
    print_replay_report (Engine.last_replay t);
    Printf.printf "recovered %s in %s\n" dir (Table.fmt_ms ms);
    (match Db.validate (Engine.snapshot t) with
    | Ok () -> print_endline "indices validate clean against a rebuild"
    | Error e ->
        Printf.printf "VALIDATION FAILED: %s\n" e;
        Engine.close t;
        exit 1);
    Table.print ~header:[ "metric"; "value" ] (engine_stats_rows t);
    Engine.close t
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Crash-recover a durable directory: truncate the log's torn tail, \
          replay committed transactions past the snapshot, validate")
    Term.(const run $ dir_arg $ sync_mode_arg)

let checkpoint_cmd =
  let run dir =
    if not (Durable.is_durable_dir dir) then begin
      Printf.eprintf "%s: not a durable directory (no snapshot.xvi)\n" dir;
      exit 1
    end;
    let t = open_engine_or_die dir in
    print_replay_report (Engine.last_replay t);
    let wal_bytes () =
      match (Engine.stats t).Engine.durable with
      | Some d -> d.Durable.wal_bytes
      | None -> 0
    in
    let ckpt_lsn () =
      match (Engine.stats t).Engine.durable with
      | Some d -> d.Durable.last_checkpoint_lsn
      | None -> 0
    in
    let before = wal_bytes () in
    let r, ms = Xvi_util.Timing.time_ms (fun () -> Engine.checkpoint t) in
    (match r with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "%s: %s\n" dir (Engine.error_to_string e);
        Engine.close t;
        exit 1);
    Printf.printf "checkpoint at LSN %d in %s: log %s -> %s\n" (ckpt_lsn ())
      (Table.fmt_ms ms) (Table.fmt_bytes before)
      (Table.fmt_bytes (wal_bytes ()));
    Engine.close t
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Write a fresh LSN-stamped snapshot of a durable directory and \
          truncate its write-ahead log")
    Term.(const run $ dir_arg)

(* --- serve / client --- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "XML document, snapshot, or durable directory to serve. With \
             $(b,--follow) this is the follower's own durable directory, \
             bootstrapped from the leader when missing or empty.")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"LEADER-SOCKET"
          ~doc:
            "Run as a replication follower of the leader serving on \
             $(docv): pull its WAL frames into FILE (a durable directory) \
             and serve stale-bounded reads from the replica. Writes answer \
             $(b,read-only) until a $(b,promote) request turns this node \
             into the leader.")
  in
  let publish_period =
    Arg.(
      value & opt float 0.0
      & info [ "publish-period" ] ~docv:"S"
          ~doc:
            "Cut a fresh read epoch at most every $(docv) seconds, so the \
             copy cost amortises over many commits; 0 publishes at every \
             durable commit boundary (read-your-writes for sessions that \
             await durability).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No lifecycle logging.")
  in
  let run file socket follow sync_mode publish_period quiet jobs =
    let log =
      if quiet then fun (_ : string) -> ()
      else fun m -> Printf.printf "xvi serve: %s\n%!" m
    in
    let install_signals server =
      let stop (_ : int) = Server.request_stop server in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
    in
    match follow with
    | Some leader_socket -> (
        match Repl_transport.connect ~socket:leader_socket () with
        | Error m ->
            Printf.eprintf "xvi serve --follow: %s\n" m;
            exit 1
        | Ok transport -> (
            match
              Follower.create ~sync_mode ~publish_period
                ~log:(fun m -> log ("repl: " ^ m))
                ~transport ~dir:file ()
            with
            | Error m ->
                transport.Repl_transport.close ();
                Printf.eprintf "xvi serve --follow: %s\n" m;
                exit 1
            | Ok f -> (
                Follower.start f;
                match
                  Server.create ~log ~repl:(Follower.handlers f)
                    ~engine:(Follower.engine f) ~socket ()
                with
                | Error m ->
                    Printf.eprintf "%s\n" m;
                    Follower.close f;
                    exit 1
                | Ok server ->
                    (* a re-seed (or promotion) swaps the engine; new
                       connections must follow it *)
                    Follower.set_on_engine_change f (Server.set_engine server);
                    log
                      (Printf.sprintf "following %s into %s" leader_socket
                         file);
                    install_signals server;
                    Server.run server;
                    (* not promoted: the serving engine is still the
                       read-only replica and Follower.close owns it;
                       promoted: the recovered leader engine is ours *)
                    let final = Server.engine server in
                    let promoted = not (Engine.read_only final) in
                    Follower.close f;
                    if promoted then Engine.close final)))
    | None ->
        if not (Sys.file_exists file) then begin
          Printf.eprintf "%s: no such file or directory\n" file;
          exit 1
        end;
        let durable = Sys.is_directory file && Durable.is_durable_dir file in
        let engine =
          if durable then
            match Engine.open_ ~sync_mode ~publish_period (Engine.Dir file) with
            | Ok t -> t
            | Error e ->
                Printf.eprintf "%s: %s\n" file (Engine.error_to_string e);
                exit 1
          else begin
            let jobs = resolve_jobs jobs in
            let config =
              if jobs > 1 then Some { Db.Config.default with jobs } else None
            in
            let db = open_db ?config file in
            match Engine.open_ ~publish_period (Engine.Memory db) with
            | Ok t -> t
            | Error e ->
                Printf.eprintf "%s: %s\n" file (Engine.error_to_string e);
                exit 1
          end
        in
        (match Engine.last_replay engine with
        | Some _ as r -> print_replay_report r
        | None -> ());
        (* a durable directory can lead followers; memory-backed engines
           have no log to ship, so replication verbs stay disabled *)
        let repl = if durable then Some (Leader.handlers engine) else None in
        (match Server.create ?repl ~log ~engine ~socket () with
        | Error m ->
            Printf.eprintf "%s\n" m;
            Engine.close engine;
            exit 1
        | Ok server ->
            install_signals server;
            Server.run server;
            Engine.close engine)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a database over a Unix-domain socket: any number of \
          snapshot-isolated reader connections (lock-free pinned epochs), \
          writes serialised through one writer with cross-session group \
          commit. A durable directory also answers the replication verbs, \
          so followers started with $(b,--follow) can pull its log. Stop \
          with a $(b,shutdown) request, SIGINT or SIGTERM.")
    Term.(
      const run $ file $ socket_arg $ follow $ sync_mode_arg $ publish_period
      $ quiet $ jobs_arg)

let promote_cmd =
  let run socket =
    match Client.connect ~socket () with
    | Error m ->
        Printf.eprintf "%s\n" m;
        exit 1
    | Ok c ->
        let r = Client.promote c in
        Client.close c;
        (match r with
        | Ok () -> print_endline "promoted"
        | Error m ->
            Printf.eprintf "xvi promote: %s\n" m;
            exit 1)
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote the follower serving on $(b,--socket) to leader: its \
          pull loop stops and its directory is recovered through the \
          ordinary crash-recovery path, after which it accepts writes and \
          can lead followers of its own. Idempotent on a node that is \
          already the leader.")
    Term.(const run $ socket_arg)

let client_cmd =
  let script =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Protocol requests to send in order (default: read one per line \
             from stdin). See the README's protocol table; e.g. \
             $(b,'lookup-string Arthur') or $(b,shutdown).")
  in
  let run socket script =
    match Client.connect ~socket () with
    | Error m ->
        Printf.eprintf "%s\n" m;
        exit 1
    | Ok c ->
        let failed = ref false in
        let send line =
          let line = String.trim line in
          if line <> "" then
            match Protocol.decode_request line with
            | Error m ->
                Printf.printf "err %s\n%!" (Protocol.escape m);
                failed := true
            | Ok req -> (
                match Client.request c req with
                | Ok resp ->
                    Printf.printf "%s\n%!" (Protocol.encode_response resp);
                    (* a well-formed error answer still fails the script:
                       CI smoke runs assert on the exit code *)
                    (match resp with
                    | Protocol.Err _ | Protocol.Conflict_r _ -> failed := true
                    | _ -> ())
                | Error m ->
                    Printf.printf "err %s\n%!" (Protocol.escape m);
                    failed := true)
        in
        (match script with
        | [] -> (
            try
              while true do
                send (input_line stdin)
              done
            with End_of_file -> ())
        | reqs -> List.iter send reqs);
        Client.close c;
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Run a scripted session against a running $(b,xvi serve): each \
          REQUEST (or stdin line) is one protocol request; responses print \
          one per line.")
    Term.(const run $ socket_arg $ script)

(* --- fuzz --- *)

let fuzz_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let ops =
    Arg.(
      value & opt int 200
      & info [ "ops" ] ~docv:"M" ~doc:"Operations per document.")
  in
  let docs =
    Arg.(
      value & opt int 50
      & info [ "docs" ] ~docv:"K" ~doc:"Random documents to exercise.")
  in
  let fault =
    Arg.(
      value & flag
      & info [ "fault" ]
          ~doc:
            "Also run the fault-injection sweeps afterwards: snapshot \
             corruption, then the WAL crash-point sweep (recovery vs. an \
             index-free oracle at every simulated crash position).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI budget: cap documents, operations and crash positions so the \
             whole run finishes in seconds.")
  in
  let run seed docs ops fault quick =
    if docs < 0 || ops < 0 then begin
      Printf.eprintf "xvi fuzz: --docs and --ops must be non-negative\n";
      exit 2
    end;
    let docs = if quick then min docs 5 else docs in
    let ops = if quick then min ops 60 else ops in
    Printf.printf "seed %d, %d docs x %d ops\n%!" seed docs ops;
    (match
       Xvi_check.Runner.run ~log:print_endline ~seed ~docs ~ops_per_doc:ops ()
     with
    | Ok o ->
        Printf.printf "differential ok: %d docs, %d ops, %d checks\n"
          o.Xvi_check.Runner.docs o.ops o.checks
    | Error f ->
        prerr_endline (Xvi_check.Runner.render_trace f);
        exit 1);
    if fault then begin
      let rng = Xvi_util.Prng.create seed in
      let gen_db rng =
        match Db.of_xml (Xvi_check.Gen.document rng) with
        | Ok db -> db
        | Error e ->
            Printf.eprintf "generated document rejected: %s\n"
              (Parser.error_to_string e);
            exit 1
      in
      let db = gen_db rng in
      let truncations = if quick then Some 2048 else None in
      let flips = if quick then 256 else 128 in
      (match Xvi_check.Fault.sweep ?truncations ~flips db with
      | Ok r ->
          Printf.printf "fault sweep ok: %d truncations, %d flips\n%!"
            r.Xvi_check.Fault.truncations r.flips
      | Error m ->
          prerr_endline ("fault sweep: " ^ m);
          exit 1);
      (* crash-point sweep: scripted durable commits, then recovery
         checked against the oracle at every simulated crash position *)
      let wal_db = gen_db rng in
      let texts = Store.text_nodes (Db.store wal_db) in
      (if Array.length texts = 0 then
         print_endline "wal sweep skipped: generated document has no text nodes"
       else begin
         let n = Array.length texts in
         let batches =
           List.init 6 (fun i ->
               List.init ((i mod 3) + 1) (fun j ->
                   (texts.((i * 3 + j) mod n), Printf.sprintf "wal-%d-%d" i j)))
         in
         let crash_points = if quick then Some 200 else None in
         match Xvi_check.Fault.wal_sweep ?crash_points wal_db batches with
         | Ok r ->
             Printf.printf
               "wal crash sweep ok: %d crash points, %d byte flips over %d \
                commits\n"
               r.Xvi_check.Fault.crash_points r.Xvi_check.Fault.wal_flips
               r.Xvi_check.Fault.commits
         | Error m ->
             prerr_endline ("wal crash sweep: " ^ m);
             exit 1
       end);
      (* snapshot-isolated serving: reader domains raced against the
         single writer, every pinned epoch digest-checked against the
         scripted commit prefix, with a mid-commit writer stall *)
      (match
         Xvi_check.Runner.run_concurrent ~log:print_endline ~seed ~readers:2
           ~commits:(if quick then 12 else 40) ()
       with
      | Ok o ->
          Printf.printf
            "concurrent serve ok: %d readers, %d checked reads over %d \
             epochs\n"
            o.Xvi_check.Runner.readers o.Xvi_check.Runner.reads
            o.Xvi_check.Runner.epochs
      | Error m ->
          prerr_endline ("concurrent serve: " ^ m);
          exit 1);
      (* group-commit crash sweep: sessions commit deferred, one shared
         fsync per round, recovery checked at every cut *)
      let serve_db = gen_db rng in
      let texts = Store.text_nodes (Db.store serve_db) in
      if Array.length texts = 0 then
        print_endline
          "serve sweep skipped: generated document has no text nodes"
      else begin
        let n = Array.length texts in
        let batches =
          List.init 9 (fun i ->
              List.init ((i mod 2) + 1) (fun j ->
                  (texts.((i * 2 + j) mod n), Printf.sprintf "serve-%d-%d" i j)))
        in
        let crash_points = if quick then Some 150 else None in
        match
          Xvi_check.Fault.serve_sweep ?crash_points ~sessions:3 serve_db
            batches
        with
        | Ok r ->
            Printf.printf
              "serve crash sweep ok: %d crash points over %d commits in %d \
               shared sync(s)\n"
              r.Xvi_check.Fault.serve_crash_points
              r.Xvi_check.Fault.serve_commits r.Xvi_check.Fault.syncs
        | Error m ->
            prerr_endline ("serve crash sweep: " ^ m);
            exit 1
      end;
      (* replication sweep: a real follower driven through a faulty
         in-process wire — leader crashes, corrupted frames, follower
         crashes, failover and rejoin, all checked against the oracle *)
      let repl_db = gen_db rng in
      let texts = Store.text_nodes (Db.store repl_db) in
      if Array.length texts = 0 then
        print_endline "repl sweep skipped: generated document has no text nodes"
      else begin
        let n = Array.length texts in
        let batches =
          List.init 6 (fun i ->
              List.init ((i mod 3) + 1) (fun j ->
                  (texts.((i * 3 + j) mod n), Printf.sprintf "repl-%d-%d" i j)))
        in
        let cap v = if quick then Some v else None in
        match
          Xvi_check.Fault.repl_sweep ?cut_points:(cap 60)
            ?stream_flips:(cap 120) ?follower_crashes:(cap 40)
            ?failovers:(cap 6) repl_db batches
        with
        | Ok r ->
            Printf.printf
              "repl sweep ok: %d stream cuts, %d corruptions, %d follower \
               crashes, %d failovers over %d commits\n"
              r.Xvi_check.Fault.repl_cut_points r.Xvi_check.Fault.stream_flips
              r.Xvi_check.Fault.follower_crashes
              r.Xvi_check.Fault.repl_failovers r.Xvi_check.Fault.repl_commits
        | Error m ->
            prerr_endline ("repl sweep: " ^ m);
            exit 1
      end;
      (* streaming-ingest crash sweep: tear the mid-load log at every
         batch boundary; recovery must hold exactly the durable chunk
         prefix and resume to the bit-identical whole-document build *)
      let ingest_doc = Xvi_check.Gen.document rng in
      let crash_points = if quick then Some 60 else Some 200 in
      (match
         Xvi_check.Fault.ingest_sweep ?crash_points
           ~ingest_flips:(if quick then 24 else 64)
           ~batch_rows:16 ingest_doc
       with
      | Ok r ->
          Printf.printf
            "ingest sweep ok: %d crash points, %d byte flips over %d \
             batch(es)\n"
            r.Xvi_check.Fault.ingest_crash_points
            r.Xvi_check.Fault.ingest_flips r.Xvi_check.Fault.ingest_batches
      | Error m ->
          prerr_endline ("ingest sweep: " ^ m);
          exit 1)
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random operation traces cross-checked \
          against an index-free oracle after every step")
    Term.(const run $ seed $ docs $ ops $ fault $ quick)

(* --- collisions --- *)

let collisions_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let store = shred_exn file in
    let by_hash = Hashtbl.create 4096 in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Text then begin
          let s = Store.text store n in
          let h = Xvi_core.Hash.to_int (Xvi_core.Hash.hash s) in
          let set =
            match Hashtbl.find_opt by_hash h with
            | Some set -> set
            | None ->
                let set = Hashtbl.create 4 in
                Hashtbl.add by_hash h set;
                set
          in
          Hashtbl.replace set s ()
        end);
    let histogram = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ set ->
        let k = Hashtbl.length set in
        Hashtbl.replace histogram k
          (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k)))
      by_hash;
    let keys = List.sort Int.compare (Hashtbl.fold (fun k _ l -> k :: l) histogram []) in
    Table.print
      ~header:[ "distinct strings per hash"; "hash values" ]
      (List.map
         (fun k -> [ string_of_int k; Table.fmt_int (Hashtbl.find histogram k) ])
         keys)
  in
  Cmd.v
    (Cmd.info "collisions" ~doc:"Hash-stability histogram (paper Figure 11)")
    Term.(const run $ file)

let () =
  let doc = "Generic and updatable XML value indices (EDBT 2009 reproduction)" in
  let info = Cmd.info "xvi" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; shred_cmd; ingest_cmd; stats_cmd; query_cmd; update_cmd;
            recover_cmd; checkpoint_cmd; serve_cmd; promote_cmd; client_cmd;
            fuzz_cmd; collisions_cmd;
          ]))

(* xvi — command-line front end to the XML value index library.

   Subcommands:
     generate   emit one of the paper's synthetic data sets as XML
     shred      build all indices and save a binary snapshot
     stats      shred a document and print its Table 1 row
     query      evaluate an XPath expression, naive vs. index-accelerated
                (accepts XML or a snapshot)
     update     apply random text updates and report maintenance time
     fuzz       differential-check random traces against the oracle
     collisions hash-stability histogram of a document (Figure 11)  *)

open Cmdliner

module Store = Xvi_xml.Store
module Parser = Xvi_xml.Parser
module Db = Xvi_core.Db
module Table = Xvi_util.Table

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let shred_exn path =
  match Parser.parse (read_file path) with
  | Ok store -> store
  | Error e ->
      Printf.eprintf "%s: parse error: %s\n" path (Parser.error_to_string e);
      exit 1

(* Accept either XML or a saved snapshot wherever a database is needed.
   A non-default config forces a re-index even when loading a snapshot. *)
let open_db ?config path =
  if Xvi_core.Snapshot.is_snapshot path then
    match Xvi_core.Snapshot.load ?config path with
    | Ok db -> db
    | Error e ->
        Printf.eprintf "%s: %s\n" path (Xvi_core.Snapshot.error_to_string e);
        exit 1
  else Db.of_store ?config (shred_exn path)

(* -j/--jobs: 0 means "one per core", the make convention. *)
let jobs_arg =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Build indices on $(docv) domains in parallel; 0 picks the host's \
           recommended domain count.")

let resolve_jobs j = if j = 0 then Xvi_util.Pool.recommended_jobs () else max j 1

(* --- generate --- *)

let generators =
  [
    ("xmark", fun ~seed ~factor -> Xvi_workload.Xmark.generate ~seed ~factor ());
    ("epageo", fun ~seed ~factor -> Xvi_workload.Datasets.epageo ~seed ~factor ());
    ("dblp", fun ~seed ~factor -> Xvi_workload.Datasets.dblp ~seed ~factor ());
    ("psd", fun ~seed ~factor -> Xvi_workload.Datasets.psd ~seed ~factor ());
    ("wiki", fun ~seed ~factor -> Xvi_workload.Datasets.wiki ~seed ~factor ());
  ]

let generate_cmd =
  let dataset =
    let doc = "Data set: xmark, epageo, dblp, psd or wiki." in
    Arg.(required & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) generators))) None
         & info [] ~docv:"DATASET" ~doc)
  in
  let factor =
    Arg.(value & opt float 1.0
         & info [ "factor"; "f" ] ~docv:"F"
             ~doc:"Size factor; 1.0 is about 1/40th of the paper's document.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run dataset factor seed output =
    let gen = List.assoc dataset generators in
    let xml = gen ~seed ~factor in
    match output with
    | Some path ->
        write_file path xml;
        Printf.printf "wrote %s (%s)\n" path
          (Table.fmt_bytes (String.length xml))
    | None -> print_string xml
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic data set")
    Term.(const run $ dataset $ factor $ seed $ output)

(* --- shred --- *)

let shred_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"XML") in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"SNAPSHOT" ~doc:"Snapshot output path.")
  in
  let substring =
    Arg.(value & flag
         & info [ "substring" ] ~doc:"Also build the substring (3-gram) index.")
  in
  let run file output substring jobs =
    let config =
      { Db.Config.default with substring; jobs = resolve_jobs jobs }
    in
    let db, ms =
      Xvi_util.Timing.time_ms (fun () ->
          Db.of_store ~config (shred_exn file))
    in
    Printf.printf "shredded and indexed %s in %s (%d jobs)\n" file
      (Table.fmt_ms ms) config.Db.Config.jobs;
    let (), ms = Xvi_util.Timing.time_ms (fun () -> Xvi_core.Snapshot.save db output) in
    Printf.printf "snapshot %s written in %s\n" output (Table.fmt_ms ms)
  in
  Cmd.v
    (Cmd.info "shred" ~doc:"Shred a document, build all indices, save a snapshot")
    Term.(const run $ file $ output $ substring $ jobs_arg)

(* --- stats --- *)

let stats_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file jobs =
    let src = read_file file in
    let store, shred_ms =
      if Xvi_core.Snapshot.is_snapshot file then
        match Xvi_core.Snapshot.load file with
        | Ok db -> (Db.store db, 0.0)
        | Error e ->
            Printf.eprintf "%s: %s\n" file
              (Xvi_core.Snapshot.error_to_string e);
            exit 1
      else Xvi_util.Timing.time_ms (fun () -> shred_exn file)
    in
    let double = Xvi_core.Lexical_types.double () in
    let jobs = resolve_jobs jobs in
    let build () =
      if jobs > 1 then
        Xvi_util.Pool.with_pool ~jobs (fun pool ->
            Xvi_core.Typed_index.create ~pool double store)
      else Xvi_core.Typed_index.create double store
    in
    let ti, index_ms = Xvi_util.Timing.time_ms build in
    let st = Xvi_core.Typed_index.stats ti store in
    let total = Store.live_count store - 1 in
    Table.print
      ~header:[ "metric"; "value" ]
      [
        [ "file size"; Table.fmt_bytes (String.length src) ];
        [ "shred time"; Table.fmt_ms shred_ms ];
        [ "double-index time"; Table.fmt_ms index_ms ];
        [ "total nodes"; Table.fmt_int total ];
        [ "element nodes"; Table.fmt_int (Store.count_of_kind store Store.Element) ];
        [ "text nodes"; Table.fmt_int (Store.count_of_kind store Store.Text) ];
        [ "attribute nodes"; Table.fmt_int (Store.count_of_kind store Store.Attribute) ];
        [ "double text nodes"; Table.fmt_int st.Xvi_core.Typed_index.complete_text_nodes ];
        [ "double non-leaf nodes"; Table.fmt_int st.Xvi_core.Typed_index.complete_non_leaves ];
        [ "db storage"; Table.fmt_bytes (Store.storage_bytes store) ];
        [ "double index storage"; Table.fmt_bytes (Xvi_core.Typed_index.storage_bytes ti) ];
      ]
  in
  Cmd.v (Cmd.info "stats" ~doc:"Shred a document and print statistics")
    Term.(const run $ file $ jobs_arg)

(* --- query --- *)

let query_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let expr = Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH") in
  let naive_only =
    Arg.(value & flag & info [ "naive" ] ~doc:"Skip the index-accelerated run.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:
               "Print the predicate conjuncts compiled to the query IR, \
                sorted by estimated cardinality, and the planner's plan for \
                the chosen candidate generator.")
  in
  let within =
    Arg.(value & opt (some string) None
         & info [ "within" ] ~docv:"XPATH"
             ~doc:
               "Restrict matches to the subtree rooted at the first node the \
                given path selects; runs as a staircase-join filter in the \
                plan, not a post-hoc intersection.")
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit"; "n" ] ~docv:"N"
         ~doc:"Print at most N matches.")
  in
  let parse_or_die expr =
    match Xvi_xpath.Xpath.parse expr with
    | Ok t -> t
    | Error e ->
        Printf.eprintf "XPath error at %d: %s\n" e.Xvi_xpath.Xpath.pos
          e.Xvi_xpath.Xpath.message;
        exit 1
  in
  let indent s =
    String.concat ""
      (List.map (fun l -> "  " ^ l ^ "\n") (String.split_on_char '\n' (String.trim s)))
  in
  let run file expr naive_only explain within limit =
    let xpath = parse_or_die expr in
    let db, open_ms = Xvi_util.Timing.time_ms (fun () -> open_db file) in
    let store = Db.store db in
    let scope =
      match within with
      | None -> None
      | Some wexpr -> (
          match Xvi_xpath.Xpath.eval store (parse_or_die wexpr) with
          | n :: _ -> Some n
          | [] ->
              Printf.eprintf "--within %s: selects no node\n" wexpr;
              exit 1)
    in
    let wrap ir =
      match scope with None -> ir | Some s -> Db.Ir.within ~scope:s ir
    in
    if explain then begin
      match Xvi_xpath.Xpath.compile_candidates db xpath with
      | [] ->
          print_endline
            "explain: no indexable conjunct; evaluated by tree walk"
      | cands ->
          let ranked =
            List.sort
              (fun (_, _, a) (_, _, b) -> compare a b)
              (List.map (fun (l, ir) -> (l, ir, Db.estimate db ir)) cands)
          in
          print_endline "conjuncts, cheapest candidate generator first:";
          List.iteri
            (fun i (l, ir, e) ->
              Printf.printf "  %s est %-8d %s   [ir: %s]\n"
                (if i = 0 then "->" else "  ")
                e l (Db.Ir.to_string ir))
            ranked;
          let _, driver, _ = List.hd ranked in
          Printf.printf "driver plan:\n%s" (indent (Db.explain db (wrap driver)));
          if List.length ranked > 1 then begin
            let all = Db.Ir.conj (List.map (fun (_, ir, _) -> ir) ranked) in
            Printf.printf
              "conjunctive index plan (node-set semantics; the XPath \
               evaluator instead verifies residual conjuncts per candidate):\n\
               %s"
              (indent (Db.explain db (wrap all)))
          end
    end;
    let in_scope =
      match scope with
      | None -> fun _ -> true
      | Some s ->
          let plane = Db.plane db in
          fun n -> Xvi_xml.Pre_plane.in_subtree plane ~scope:s n
    in
    let naive, naive_ms =
      Xvi_util.Timing.time_ms (fun () ->
          List.filter in_scope (Xvi_xpath.Xpath.eval store xpath))
    in
    Printf.printf "naive:   %d matches in %s\n" (List.length naive)
      (Table.fmt_ms naive_ms);
    let result =
      if naive_only then naive
      else begin
        let build_ms = open_ms in
        let indexed, fast_ms =
          Xvi_util.Timing.time_ms (fun () ->
              List.filter in_scope (Xvi_xpath.Xpath.eval_indexed db xpath))
        in
        let plan = Xvi_xpath.Xpath.last_plan () in
        Printf.printf
          "indexed: %d matches in %s (open/build %s; %d string / %d double / \
           %d name index probes)\n"
          (List.length indexed) (Table.fmt_ms fast_ms) (Table.fmt_ms build_ms)
          plan.Xvi_xpath.Xpath.used_string_index
          plan.Xvi_xpath.Xpath.used_double_index
          plan.Xvi_xpath.Xpath.used_name_index;
        if indexed <> naive then Printf.printf "WARNING: result sets differ!\n";
        indexed
      end
    in
    List.iteri
      (fun i n ->
        if i < limit then
          let rendered = Xvi_xml.Serializer.to_string store n in
          let rendered =
            if String.length rendered > 120 then String.sub rendered 0 117 ^ "..."
            else rendered
          in
          Printf.printf "  %s\n" rendered)
      result
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate an XPath expression")
    Term.(const run $ file $ expr $ naive_only $ explain $ within $ limit)

(* --- update --- *)

let update_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let count =
    Arg.(value & opt int 1000 & info [ "count"; "n" ] ~docv:"N"
         ~doc:"Number of text nodes to update.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N") in
  let run file count seed jobs =
    let jobs = resolve_jobs jobs in
    let config =
      if jobs > 1 then Some { Db.Config.default with jobs } else None
    in
    let db, build_ms = Xvi_util.Timing.time_ms (fun () -> open_db ?config file) in
    let store = Db.store db in
    Printf.printf "index open/build: %s\n" (Table.fmt_ms build_ms);
    let updates =
      Xvi_workload.Update_workload.random_text_updates ~seed store ~count
    in
    let (), ms = Xvi_util.Timing.time_ms (fun () -> Db.update_texts db updates) in
    Printf.printf "updated %d text nodes; index maintenance %s\n"
      (List.length updates) (Table.fmt_ms ms);
    match Db.validate db with
    | Ok () -> print_endline "indices validate clean against a rebuild"
    | Error e ->
        Printf.printf "VALIDATION FAILED: %s\n" e;
        exit 1
  in
  Cmd.v (Cmd.info "update" ~doc:"Random text updates with index maintenance")
    Term.(const run $ file $ count $ seed $ jobs_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let ops =
    Arg.(
      value & opt int 200
      & info [ "ops" ] ~docv:"M" ~doc:"Operations per document.")
  in
  let docs =
    Arg.(
      value & opt int 50
      & info [ "docs" ] ~docv:"K" ~doc:"Random documents to exercise.")
  in
  let fault =
    Arg.(
      value & flag
      & info [ "fault" ]
          ~doc:"Also run the snapshot fault-injection sweep afterwards.")
  in
  let run seed docs ops fault =
    if docs < 0 || ops < 0 then begin
      Printf.eprintf "xvi fuzz: --docs and --ops must be non-negative\n";
      exit 2
    end;
    Printf.printf "seed %d, %d docs x %d ops\n%!" seed docs ops;
    (match
       Xvi_check.Runner.run ~log:print_endline ~seed ~docs ~ops_per_doc:ops ()
     with
    | Ok o ->
        Printf.printf "differential ok: %d docs, %d ops, %d checks\n"
          o.Xvi_check.Runner.docs o.ops o.checks
    | Error f ->
        prerr_endline (Xvi_check.Runner.render_trace f);
        exit 1);
    if fault then begin
      let rng = Xvi_util.Prng.create seed in
      let db = Db.of_xml_exn (Xvi_check.Gen.document rng) in
      match Xvi_check.Fault.sweep db with
      | Ok r ->
          Printf.printf "fault sweep ok: %d truncations, %d flips\n"
            r.Xvi_check.Fault.truncations r.flips
      | Error m ->
          prerr_endline ("fault sweep: " ^ m);
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random operation traces cross-checked \
          against an index-free oracle after every step")
    Term.(const run $ seed $ docs $ ops $ fault)

(* --- collisions --- *)

let collisions_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let store = shred_exn file in
    let by_hash = Hashtbl.create 4096 in
    Store.iter_pre store (fun n ->
        if Store.kind store n = Store.Text then begin
          let s = Store.text store n in
          let h = Xvi_core.Hash.to_int (Xvi_core.Hash.hash s) in
          let set =
            match Hashtbl.find_opt by_hash h with
            | Some set -> set
            | None ->
                let set = Hashtbl.create 4 in
                Hashtbl.add by_hash h set;
                set
          in
          Hashtbl.replace set s ()
        end);
    let histogram = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ set ->
        let k = Hashtbl.length set in
        Hashtbl.replace histogram k
          (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k)))
      by_hash;
    let keys = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) histogram []) in
    Table.print
      ~header:[ "distinct strings per hash"; "hash values" ]
      (List.map
         (fun k -> [ string_of_int k; Table.fmt_int (Hashtbl.find histogram k) ])
         keys)
  in
  Cmd.v
    (Cmd.info "collisions" ~doc:"Hash-stability histogram (paper Figure 11)")
    Term.(const run $ file)

let () =
  let doc = "Generic and updatable XML value indices (EDBT 2009 reproduction)" in
  let info = Cmd.info "xvi" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; shred_cmd; stats_cmd; query_cmd; update_cmd;
            fuzz_cmd; collisions_cmd;
          ]))
